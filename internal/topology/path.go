package topology

import "fmt"

// rooted is a cached rooted view of the tree used for path and subtree
// queries. It is built lazily and invalidated by mutation (via validated).
type rooted struct {
	root   int
	parent []int // parent[v] = parent of v in the rooted tree; -1 at root
	depth  []int
	order  []int // preorder
	// machineCount[v] = number of machines in the subtree rooted at v.
	machineCount []int
}

// Root the tree at node r and compute parent/depth/preorder/machine counts.
func (g *Graph) rootAt(r int) *rooted {
	g.ensureValid()
	n := len(g.nodes)
	rt := &rooted{
		root:         r,
		parent:       make([]int, n),
		depth:        make([]int, n),
		order:        make([]int, 0, n),
		machineCount: make([]int, n),
	}
	for i := range rt.parent {
		rt.parent[i] = -1
	}
	stack := []int{r}
	visited := make([]bool, n)
	visited[r] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rt.order = append(rt.order, u)
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				rt.parent[v] = u
				rt.depth[v] = rt.depth[u] + 1
				stack = append(stack, v)
			}
		}
	}
	// Machine counts bottom-up in reverse preorder.
	for i := len(rt.order) - 1; i >= 0; i-- {
		v := rt.order[i]
		if g.nodes[v].Kind == Machine {
			rt.machineCount[v]++
		}
		if p := rt.parent[v]; p >= 0 {
			rt.machineCount[p] += rt.machineCount[v]
		}
	}
	return rt
}

// pathCache holds the canonical rooted view (rooted at node 0) that Path and
// the load analysis share.
func (g *Graph) canonical() *rooted {
	// Rebuilt on demand; cheap relative to scheduling, and mutation after
	// validation is rare. Cache keyed on validated flag.
	if g.cachedRoot == nil || !g.validated {
		g.ensureValid()
		g.cachedRoot = g.rootAt(0)
	}
	return g.cachedRoot
}

// Path returns the unique path from node u to node v as an ordered list of
// directed edges. Path(u, u) is empty.
func (g *Graph) Path(u, v int) []Edge {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		panic(fmt.Sprintf("topology: Path(%d, %d): node out of range", u, v))
	}
	if u == v {
		return nil
	}
	rt := g.canonical()
	// Walk both endpoints up to their lowest common ancestor.
	var up []Edge   // edges from u toward the LCA
	var down []Edge // edges from v toward the LCA (to be reversed)
	a, b := u, v
	for rt.depth[a] > rt.depth[b] {
		up = append(up, Edge{U: a, V: rt.parent[a]})
		a = rt.parent[a]
	}
	for rt.depth[b] > rt.depth[a] {
		down = append(down, Edge{U: b, V: rt.parent[b]})
		b = rt.parent[b]
	}
	for a != b {
		up = append(up, Edge{U: a, V: rt.parent[a]})
		a = rt.parent[a]
		down = append(down, Edge{U: b, V: rt.parent[b]})
		b = rt.parent[b]
	}
	// The downward half traverses the reversed edges in reverse order.
	path := up
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i].Reverse())
	}
	return path
}

// PathBetweenRanks returns the path between two machines given by rank.
func (g *Graph) PathBetweenRanks(src, dst int) []Edge {
	return g.Path(g.machines[src], g.machines[dst])
}

// EdgeIndex assigns a dense index to every directed edge of the tree so
// contention checks can use flat bitsets instead of maps.
type EdgeIndex struct {
	ids   map[Edge]int
	edges []Edge
	// up[v] and down[v] are the dense IDs of the directed edges
	// (v, parent(v)) and (parent(v), v) in the canonical rooting, -1 at
	// the root. They let AppendPathEdgeIDs walk a path without map
	// lookups.
	up, down []int32
}

// NewEdgeIndex builds the directed-edge index for the graph.
func (g *Graph) NewEdgeIndex() *EdgeIndex {
	g.ensureValid()
	idx := &EdgeIndex{ids: make(map[Edge]int)}
	for _, l := range g.Links() {
		for _, e := range []Edge{l, l.Reverse()} {
			idx.ids[e] = len(idx.edges)
			idx.edges = append(idx.edges, e)
		}
	}
	rt := g.canonical()
	idx.up = make([]int32, len(g.nodes))
	idx.down = make([]int32, len(g.nodes))
	for i := range idx.up {
		idx.up[i], idx.down[i] = -1, -1
	}
	for id, e := range idx.edges {
		switch {
		case rt.parent[e.U] == e.V:
			idx.up[e.U] = int32(id)
		case rt.parent[e.V] == e.U:
			idx.down[e.V] = int32(id)
		}
	}
	return idx
}

// Len returns the number of directed edges.
func (idx *EdgeIndex) Len() int { return len(idx.edges) }

// ID returns the dense index of a directed edge; the edge must exist.
func (idx *EdgeIndex) ID(e Edge) int {
	id, ok := idx.ids[e]
	if !ok {
		panic(fmt.Sprintf("topology: unknown edge %v", e))
	}
	return id
}

// Edge returns the directed edge with the given dense index.
func (idx *EdgeIndex) Edge(id int) Edge { return idx.edges[id] }

// PathIDs returns the dense directed-edge indices along Path(u, v).
func (g *Graph) PathIDs(idx *EdgeIndex, u, v int) []int {
	path := g.Path(u, v)
	ids := make([]int, len(path))
	for i, e := range path {
		ids[i] = idx.ID(e)
	}
	return ids
}

// AppendPathEdgeIDs appends the dense directed-edge IDs of the unique path
// from u to v onto dst and returns the extended slice. The order of IDs
// within the path is unspecified — callers that treat the path as an edge
// set (contention bitsets) use this instead of PathIDs to avoid the map
// lookups and per-call allocations of the Edge-keyed walk. The index must
// have been built by NewEdgeIndex on this graph.
func (g *Graph) AppendPathEdgeIDs(idx *EdgeIndex, u, v int, dst []int32) []int32 {
	if u == v {
		return dst
	}
	rt := g.canonical()
	a, b := u, v
	for rt.depth[a] > rt.depth[b] {
		dst = append(dst, idx.up[a])
		a = rt.parent[a]
	}
	for rt.depth[b] > rt.depth[a] {
		dst = append(dst, idx.down[b])
		b = rt.parent[b]
	}
	for a != b {
		dst = append(dst, idx.up[a])
		a = rt.parent[a]
		dst = append(dst, idx.down[b])
		b = rt.parent[b]
	}
	return dst
}
