package topology

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSpanningTreeRing(t *testing.T) {
	// Four switches cabled in a ring with one machine each: the spanning
	// tree must block exactly one switch-switch link and keep everything
	// reachable.
	w := NewWiring()
	var sw [4]int
	for i := range sw {
		sw[i], _ = w.AddSwitch("s" + string(rune('0'+i)))
	}
	for i := range sw {
		if err := w.Connect(sw[i], sw[(i+1)%4]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sw {
		m, _ := w.AddMachine("m" + string(rune('0'+i)))
		if err := w.Connect(sw[i], m); err != nil {
			t.Fatal(err)
		}
	}
	g, err := w.SpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != g.NumNodes()-1 {
		t.Errorf("not a tree: %d links, %d nodes", g.NumLinks(), g.NumNodes())
	}
	if w.BlockedLinks() != 1 {
		t.Errorf("BlockedLinks = %d, want 1 (the redundant ring cable)", w.BlockedLinks())
	}
	// Root bridge is s0 (smallest name); its ring neighbors attach to it
	// directly, s2 hangs off s1 (name tie-break).
	s0, _ := g.Lookup("s0")
	s1, _ := g.Lookup("s1")
	s2, _ := g.Lookup("s2")
	s3, _ := g.Lookup("s3")
	hasLink := func(a, b int) bool {
		for _, x := range g.Neighbors(a) {
			if x == b {
				return true
			}
		}
		return false
	}
	if !hasLink(s0, s1) || !hasLink(s0, s3) {
		t.Error("ring neighbors of the root must keep their root links")
	}
	if !hasLink(s1, s2) {
		t.Error("s2 should attach through s1 (smallest-name tie-break)")
	}
	if hasLink(s2, s3) {
		t.Error("the s2-s3 cable must be blocked")
	}
	// The derived tree schedules like any other.
	if g.AAPCLoad() <= 0 {
		t.Error("derived tree has no load")
	}
}

func TestSpanningTreeParallelLinks(t *testing.T) {
	// Two switches cabled twice (redundant trunk): one survives.
	w := NewWiring()
	a, _ := w.AddSwitch("a")
	b, _ := w.AddSwitch("b")
	w.Connect(a, b)
	w.Connect(a, b)
	m, _ := w.AddMachine("m")
	w.Connect(a, m)
	n, _ := w.AddMachine("n")
	w.Connect(b, n)
	g, err := w.SpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 3 {
		t.Errorf("links = %d, want 3", g.NumLinks())
	}
	if w.BlockedLinks() != 1 {
		t.Errorf("BlockedLinks = %d, want 1", w.BlockedLinks())
	}
}

func TestSpanningTreePreservesRanks(t *testing.T) {
	// Machine ranks follow declaration order regardless of tree shape.
	w := NewWiring()
	s, _ := w.AddSwitch("s")
	names := []string{"zeta", "alpha", "mid"}
	for _, name := range names {
		m, _ := w.AddMachine(name)
		w.Connect(s, m)
	}
	g, err := w.SpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	for rank, want := range names {
		if got := g.Node(g.MachineID(rank)).Name; got != want {
			t.Errorf("rank %d = %s, want %s", rank, got, want)
		}
	}
}

func TestSpanningTreeErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewWiring().SpanningTree(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("no switches", func(t *testing.T) {
		w := NewWiring()
		w.AddMachine("a")
		if _, err := w.SpanningTree(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("machine with two cables", func(t *testing.T) {
		w := NewWiring()
		s1, _ := w.AddSwitch("s1")
		s2, _ := w.AddSwitch("s2")
		w.Connect(s1, s2)
		m, _ := w.AddMachine("m")
		w.Connect(s1, m)
		w.Connect(s2, m)
		if _, err := w.SpanningTree(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		w := NewWiring()
		w.AddSwitch("s1")
		w.AddSwitch("s2")
		if _, err := w.SpanningTree(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("self cable", func(t *testing.T) {
		w := NewWiring()
		s, _ := w.AddSwitch("s")
		if err := w.Connect(s, s); err == nil {
			t.Error("want error")
		}
	})
	t.Run("dup name", func(t *testing.T) {
		w := NewWiring()
		w.AddSwitch("x")
		if _, err := w.AddMachine("x"); err == nil {
			t.Error("want error")
		}
	})
}

func TestSpanningTreeRandomMesh(t *testing.T) {
	// Random connected switch meshes with machines: the derived tree must
	// always validate and keep every machine.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		w := NewWiring()
		nsw := 2 + rng.Intn(6)
		sws := make([]int, nsw)
		for i := range sws {
			sws[i], _ = w.AddSwitch("s" + string(rune('a'+i)))
			if i > 0 {
				w.Connect(sws[i], sws[rng.Intn(i)]) // ensure connectivity
			}
		}
		// Extra random cables create cycles.
		for k := 0; k < rng.Intn(5); k++ {
			a, b := rng.Intn(nsw), rng.Intn(nsw)
			if a != b {
				w.Connect(sws[a], sws[b])
			}
		}
		nm := 2 + rng.Intn(8)
		for i := 0; i < nm; i++ {
			m, _ := w.AddMachine("m" + string(rune('a'+i)))
			w.Connect(m, sws[rng.Intn(nsw)])
		}
		g, err := w.SpanningTree()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.NumMachines() != nm {
			t.Fatalf("trial %d: machines lost: %d of %d", trial, g.NumMachines(), nm)
		}
		if _, err := g.FindRoot(); err != nil {
			t.Fatalf("trial %d: derived tree unschedulable: %v", trial, err)
		}
	}
}

func TestParseWiring(t *testing.T) {
	w, err := ParseWiring(strings.NewReader(`
# redundant square of switches
switches s0 s1 s2 s3
machines m0 m1
link s0 s1
link s1 s2
link s2 s3
link s3 s0
link s0 m0
link s2 m1
`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.SpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 5 || w.BlockedLinks() != 1 {
		t.Errorf("links %d blocked %d, want 5/1", g.NumLinks(), w.BlockedLinks())
	}
	for _, bad := range []string{
		"frob s0",
		"link a b",
		"switch s\nlink s",
		"switch s s",
	} {
		if _, err := ParseWiring(strings.NewReader(bad)); err == nil {
			t.Errorf("want parse error for %q", bad)
		}
	}
}

func TestDOT(t *testing.T) {
	g := fig1(t)
	dot := g.DOT()
	for _, want := range []string{"graph cluster", `"s0" [shape=box]`, `"n0" [shape=circle]`, `"s0" -- "s1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Speeds show as labels.
	h := New()
	a := h.MustAddSwitch("a")
	b := h.MustAddSwitch("b")
	h.MustConnectSpeed(a, b, 10)
	m := h.MustAddMachine("m")
	h.MustConnect(a, m)
	n := h.MustAddMachine("n")
	h.MustConnect(b, n)
	h.MustValidate()
	if !strings.Contains(h.DOT(), `label="10x"`) {
		t.Errorf("DOT missing speed label:\n%s", h.DOT())
	}
}
