// Package topology models Ethernet switched clusters as tree networks.
//
// An Ethernet switched cluster consists of machines connected to switches.
// Because Ethernet switches determine forwarding paths with a spanning-tree
// protocol, the effective physical topology is always a tree (Section 3 of
// Faraj & Yuan, IPPS 2005). The package provides the tree graph model, the
// unique-path computation, per-edge AAPC load analysis, bottleneck
// identification, the peak aggregate throughput bound, and the root
// identification procedure from Section 4.1 of the paper.
//
// Nodes are either switches or machines. Machines must be leaves. Links are
// full duplex: each physical link (u, v) corresponds to two directed edges
// (u, v) and (v, u) that carry traffic independently.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Kind distinguishes switches from machines.
type Kind uint8

const (
	// Switch nodes forward traffic and may have any degree.
	Switch Kind = iota
	// Machine nodes run ranks of the parallel program and must be leaves.
	Machine
)

// String returns "switch" or "machine".
func (k Kind) String() string {
	switch k {
	case Switch:
		return "switch"
	case Machine:
		return "machine"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a vertex of the cluster tree.
type Node struct {
	// ID is the dense node identifier assigned by the graph.
	ID int
	// Name is the human-readable label (e.g. "s0", "n17").
	Name string
	// Kind tells whether the node is a Switch or a Machine.
	Kind Kind
}

// Edge is a directed edge (U, V) of the cluster graph. A physical link
// between u and v corresponds to the two edges (u, v) and (v, u).
type Edge struct {
	U, V int
}

// Reverse returns the oppositely directed edge.
func (e Edge) Reverse() Edge { return Edge{U: e.V, V: e.U} }

// Graph is an Ethernet switched cluster: a tree of switches and machines.
//
// The zero value is an empty graph ready for use. Nodes are added with
// AddSwitch and AddMachine, links with Connect. Query methods that depend on
// the tree structure (paths, loads, roots) require a successful Validate or
// any builder that validates internally; they panic on malformed graphs only
// where documented, otherwise they return errors.
type Graph struct {
	nodes []Node
	adj   [][]int // adjacency lists by node ID

	// machines lists machine node IDs in rank order: machines[r] is the
	// node ID of MPI rank r.
	machines []int
	// rank maps node ID to machine rank, -1 for switches.
	rank []int

	// name index for lookups and duplicate detection.
	byName map[string]int

	// speeds holds per-link speed multipliers (canonical U < V orientation);
	// links absent from the map have speed 1.
	speeds map[Edge]float64

	validated  bool
	cachedRoot *rooted
}

// New returns an empty cluster graph.
func New() *Graph {
	return &Graph{byName: make(map[string]int)}
}

func (g *Graph) addNode(name string, kind Kind) (int, error) {
	if g.byName == nil {
		g.byName = make(map[string]int)
	}
	if name == "" {
		return 0, errors.New("topology: empty node name")
	}
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("topology: duplicate node name %q", name)
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind})
	g.adj = append(g.adj, nil)
	g.byName[name] = id
	if kind == Machine {
		g.machines = append(g.machines, id)
		g.rank = append(g.rank, len(g.machines)-1)
	} else {
		g.rank = append(g.rank, -1)
	}
	g.validated = false
	return id, nil
}

// AddSwitch adds a switch node with the given name and returns its ID.
func (g *Graph) AddSwitch(name string) (int, error) {
	return g.addNode(name, Switch)
}

// AddMachine adds a machine node with the given name and returns its ID.
// Machines are assigned consecutive ranks in the order they are added.
func (g *Graph) AddMachine(name string) (int, error) {
	return g.addNode(name, Machine)
}

// MustAddSwitch is AddSwitch that panics on error; for tests and literals.
func (g *Graph) MustAddSwitch(name string) int {
	id, err := g.AddSwitch(name)
	if err != nil {
		panic(err)
	}
	return id
}

// MustAddMachine is AddMachine that panics on error; for tests and literals.
func (g *Graph) MustAddMachine(name string) int {
	id, err := g.AddMachine(name)
	if err != nil {
		panic(err)
	}
	return id
}

// Connect adds a full-duplex link between nodes u and v.
func (g *Graph) Connect(u, v int) error {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		return fmt.Errorf("topology: Connect(%d, %d): node out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("topology: Connect(%d, %d): self link", u, v)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("topology: duplicate link between %s and %s",
				g.nodes[u].Name, g.nodes[v].Name)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.validated = false
	return nil
}

// MustConnect is Connect that panics on error; for tests and literals.
func (g *Graph) MustConnect(u, v int) {
	if err := g.Connect(u, v); err != nil {
		panic(err)
	}
}

// NumNodes returns the total number of nodes (switches and machines).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumMachines returns |M|, the number of machines.
func (g *Graph) NumMachines() int { return len(g.machines) }

// NumSwitches returns |S|, the number of switches.
func (g *Graph) NumSwitches() int { return len(g.nodes) - len(g.machines) }

// NumLinks returns the number of physical (full-duplex) links.
func (g *Graph) NumLinks() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Lookup returns the node ID for a name.
func (g *Graph) Lookup(name string) (int, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MachineID returns the node ID of the machine with the given rank.
func (g *Graph) MachineID(rank int) int { return g.machines[rank] }

// RankOf returns the machine rank of a node ID, or -1 if it is a switch.
func (g *Graph) RankOf(id int) int { return g.rank[id] }

// Machines returns the machine node IDs in rank order. The caller must not
// modify the returned slice.
func (g *Graph) Machines() []int { return g.machines }

// Neighbors returns the adjacency list of a node. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// Degree returns the number of links incident to the node.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Links enumerates every physical link once, as the directed edge with
// U < V.
func (g *Graph) Links() []Edge {
	var links []Edge
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				links = append(links, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	return links
}

// Validate checks that the graph is a well-formed Ethernet switched cluster:
// non-empty, connected, acyclic (a tree), and with every machine a leaf.
// Validating an already-validated graph is a read-only no-op (mutation
// resets the flag), so concurrent users of a shared validated graph — e.g.
// parallel harness cells each building a World — never write to it.
func (g *Graph) Validate() error {
	if g.validated {
		return nil
	}
	n := len(g.nodes)
	if n == 0 {
		return errors.New("topology: empty graph")
	}
	if len(g.machines) == 0 {
		return errors.New("topology: no machines")
	}
	// A tree with n nodes has exactly n-1 links.
	if got := g.NumLinks(); got != n-1 {
		return fmt.Errorf("topology: %d links for %d nodes; a tree needs %d",
			got, n, n-1)
	}
	// Connectivity by BFS; with n-1 links, connected implies acyclic.
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topology: graph is not connected (%d of %d nodes reachable)",
			count, n)
	}
	for _, m := range g.machines {
		if len(g.adj[m]) != 1 {
			return fmt.Errorf("topology: machine %s must be a leaf (degree %d)",
				g.nodes[m].Name, len(g.adj[m]))
		}
		if g.nodes[g.adj[m][0]].Kind != Switch {
			return fmt.Errorf("topology: machine %s must connect to a switch, not to %s",
				g.nodes[m].Name, g.nodes[g.adj[m][0]].Name)
		}
	}
	g.validated = true
	return nil
}

// MustValidate panics if the graph is malformed; for tests and literals.
func (g *Graph) MustValidate() *Graph {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// ensureValid panics on graphs that were never validated successfully. Query
// methods that rely on tree structure call this so misuse fails loudly
// rather than returning silently wrong analysis.
func (g *Graph) ensureValid() {
	if !g.validated {
		if err := g.Validate(); err != nil {
			panic("topology: graph not valid: " + err.Error())
		}
	}
}

// String summarizes the cluster.
func (g *Graph) String() string {
	return fmt.Sprintf("cluster{%d switches, %d machines, %d links}",
		g.NumSwitches(), g.NumMachines(), g.NumLinks())
}
