package topology

import (
	"math"
	"strings"
	"testing"
)

// gigaCluster wires two switches (10x trunk) with 3 machines each.
func gigaCluster(t testing.TB) *Graph {
	t.Helper()
	g := New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnectSpeed(s0, s1, 10)
	for i, sw := range []int{s0, s0, s0, s1, s1, s1} {
		m := g.MustAddMachine("n" + string(rune('0'+i)))
		g.MustConnect(sw, m)
	}
	return g.MustValidate()
}

func TestLinkSpeedDefaults(t *testing.T) {
	g := gigaCluster(t)
	s0, _ := g.Lookup("s0")
	s1, _ := g.Lookup("s1")
	n0, _ := g.Lookup("n0")
	if got := g.LinkSpeed(Edge{s0, s1}); got != 10 {
		t.Errorf("trunk speed = %v, want 10", got)
	}
	if got := g.LinkSpeed(Edge{s1, s0}); got != 10 {
		t.Errorf("reverse trunk speed = %v, want 10", got)
	}
	if got := g.LinkSpeed(Edge{s0, n0}); got != 1 {
		t.Errorf("machine link speed = %v, want 1", got)
	}
	if g.Uniform() {
		t.Error("cluster with a 10x trunk is not uniform")
	}
}

func TestUniformCluster(t *testing.T) {
	g := New()
	s := g.MustAddSwitch("s")
	a := g.MustAddMachine("a")
	b := g.MustAddMachine("b")
	g.MustConnectSpeed(s, a, 1) // explicit speed 1 keeps uniformity
	g.MustConnect(s, b)
	g.MustValidate()
	if !g.Uniform() {
		t.Error("all-speed-1 cluster should be uniform")
	}
}

func TestConnectSpeedRejectsBad(t *testing.T) {
	g := New()
	s := g.MustAddSwitch("s")
	m := g.MustAddMachine("m")
	if err := g.ConnectSpeed(s, m, 0); err == nil {
		t.Error("want error for zero speed")
	}
	if err := g.ConnectSpeed(s, m, -2); err == nil {
		t.Error("want error for negative speed")
	}
}

func TestWeightedBottleneckMoves(t *testing.T) {
	// With a speed-1 trunk the trunk is the bottleneck (load 9 vs machine
	// load 5); at 10x the machine links (5/1) dominate the trunk (9/10).
	slow := New()
	s0 := slow.MustAddSwitch("s0")
	s1 := slow.MustAddSwitch("s1")
	slow.MustConnect(s0, s1)
	for i, sw := range []int{s0, s0, s0, s1, s1, s1} {
		m := slow.MustAddMachine("n" + string(rune('0'+i)))
		slow.MustConnect(sw, m)
	}
	slow.MustValidate()
	wb, ratio := slow.WeightedBottleneck()
	if wb.Load != 9 || ratio != 9 {
		t.Errorf("uniform: bottleneck load %d ratio %v, want 9/9", wb.Load, ratio)
	}

	fast := gigaCluster(t)
	wb, ratio = fast.WeightedBottleneck()
	if wb.Load != 5 || ratio != 5 {
		t.Errorf("giga: bottleneck load %d ratio %v, want machine link 5/5", wb.Load, ratio)
	}
	// Weighted peak improves from 6*5*B/9 to 6*5*B/5 = 6B.
	if got, want := fast.WeightedPeakAggregateThroughput(100), 600.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted peak = %v, want %v", got, want)
	}
	if got, want := fast.WeightedBestCaseTime(1000, 100), 50.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted best case = %v, want %v", got, want)
	}
	// The unweighted analysis still reports the trunk.
	if fast.AAPCLoad() != 9 {
		t.Errorf("unweighted load = %d, want 9", fast.AAPCLoad())
	}
}

func TestSpeedDSLRoundTrip(t *testing.T) {
	src := `
switches s0 s1
machines a b c d
link s0 s1 10
link s0 a
link s0 b
link s1 c 2.5
link s1 d
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := g.Lookup("s0")
	s1, _ := g.Lookup("s1")
	c, _ := g.Lookup("c")
	if g.LinkSpeed(Edge{s0, s1}) != 10 || g.LinkSpeed(Edge{s1, c}) != 2.5 {
		t.Fatalf("parsed speeds wrong")
	}
	text := g.Format()
	if !strings.Contains(text, "link s0 s1 10") || !strings.Contains(text, "link s1 c 2.5") {
		t.Errorf("formatted output missing speeds:\n%s", text)
	}
	g2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Format() != text {
		t.Errorf("speed round trip mismatch")
	}
}

func TestSpeedDSLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad speed":      "switch s\nmachine m\nlink s m zoom",
		"zero speed":     "switch s\nmachine m\nlink s m 0",
		"negative speed": "switch s\nmachine m\nlink s m -3",
		"extra field":    "switch s\nmachine m\nlink s m 1 1",
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}
