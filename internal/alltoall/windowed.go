package alltoall

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Windowed returns a topology-oblivious all-to-all that bounds the number of
// outstanding sends per rank to the given window, in the spirit of the
// cluster-exchange algorithms of Tam & Wang (the paper's reference [15]).
// Receives are all pre-posted; sends proceed in offset order (i -> i+1,
// i+2, ...) with at most window of them in flight, throttling the
// instantaneous fan-out without any topology knowledge.
//
// window = 1 degenerates to a fully serialized send loop; window >= N-1 is
// equivalent to SimpleOffset.
func Windowed(window int) Func {
	return func(c mpi.Comm, b Buffers, msize int) error {
		if window < 1 {
			return fmt.Errorf("alltoall: window %d must be >= 1", window)
		}
		n, me := c.Size(), c.Rank()
		copySelf(c, b)
		recvReqs := make([]mpi.Request, 0, n-1)
		for off := 1; off < n; off++ {
			p := (me + off) % n
			recvReqs = append(recvReqs, c.Irecv(b.RecvBlock(p), p, tagData))
		}
		// Sliding window of outstanding sends.
		inFlight := make([]mpi.Request, 0, window)
		for off := 1; off < n; off++ {
			p := (me + off) % n
			if len(inFlight) == window {
				if err := inFlight[0].Wait(); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return err
				}
				inFlight = inFlight[1:]
			}
			inFlight = append(inFlight, c.Isend(b.SendBlock(p), p, tagData))
		}
		if err := mpi.WaitAll(inFlight); err != nil {
			//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
			return err
		}
		return mpi.WaitAll(recvReqs)
	}
}
