package alltoall

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Allgather support: every rank contributes one block (its SendBlock for
// its own rank) and collects every rank's block. The communication pattern
// is the same set of point-to-point messages as AAPC — each ordered pair
// exchanges msize bytes — so the paper's contention-free phases apply
// verbatim; only the payload changes (the sender's own block each time
// instead of a per-destination block).
//
// Note the cost trade-off: allgather has multicast structure that a
// point-to-point AAPC schedule cannot exploit — one copy of a block
// crossing an inter-switch trunk could serve every machine behind it, so
// allgather's bottleneck bound is lower than AAPC's. The scheduled variant
// guarantees contention freedom and inherits the AAPC cost exactly; the
// store-and-forward ring baseline reuses blocks and often beats it on
// multi-switch topologies. Both are provided; topology-aware multicast
// scheduling is future work beyond the paper.

// AllgatherRing is the classic ring allgather: N-1 steps, each rank
// forwarding the block it received in the previous step to its successor.
// When ranks are numbered contiguously per subtree (as the presets are),
// every block crosses each inter-switch link at most twice, exploiting the
// multicast reuse described above.
func AllgatherRing(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	copy(b.RecvBlock(me), b.SendBlock(me))
	if n == 1 {
		return nil
	}
	next := (me + 1) % n
	prev := (me - 1 + n) % n
	// At step s we forward the block of rank (me - s + n) % n.
	for s := 0; s < n-1; s++ {
		outOwner := (me - s + n) % n
		inOwner := (me - s - 1 + n) % n
		if err := mpi.Sendrecv(c,
			b.RecvBlock(outOwner), next, tagData,
			b.RecvBlock(inOwner), prev, tagData); err != nil {
			return fmt.Errorf("alltoall: allgather ring step %d: %w", s, err)
		}
	}
	return nil
}

// AllgatherFn returns the allgather variant of the compiled scheduled
// routine: the same contention-free phases and pair-wise synchronizations,
// with every send carrying the rank's own contribution.
func (sc *Scheduled) AllgatherFn() Func {
	return func(c mpi.Comm, b Buffers, msize int) error {
		if c.Size() != len(sc.programs) {
			return fmt.Errorf("alltoall: routine compiled for %d ranks, world has %d",
				len(sc.programs), c.Size())
		}
		prog := &sc.programs[c.Rank()]
		mine := b.SendBlock(c.Rank())
		copy(b.RecvBlock(c.Rank()), mine)

		recvReqs := make([]mpi.Request, len(prog.recvSrcs))
		for i, src := range prog.recvSrcs {
			recvReqs[i] = c.Irecv(b.RecvBlock(src), src, tagData)
		}
		var syncSends []mpi.Request
		syncByte := []byte{1}
		phase := 0
		for i := range prog.sends {
			st := &prog.sends[i]
			if sc.mode == BarrierSync {
				for phase < st.phase {
					if err := c.Barrier(); err != nil {
						return err
					}
					phase++
				}
			}
			for _, w := range prog.waits[st.waitLo:st.waitHi] {
				if err := mpi.Recv(c, make([]byte, 1), w.peer, w.tag); err != nil {
					return fmt.Errorf("alltoall: sync wait from %d: %w", w.peer, err)
				}
			}
			if err := mpi.Send(c, mine, st.dst, tagData); err != nil {
				return fmt.Errorf("alltoall: allgather send phase %d to %d: %w", st.phase, st.dst, err)
			}
			for _, e := range prog.emits[st.emitLo:st.emitHi] {
				syncSends = append(syncSends, c.Isend(syncByte, e.peer, e.tag))
			}
		}
		if sc.mode == BarrierSync {
			for ; phase < prog.numPhases-1; phase++ {
				if err := c.Barrier(); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return err
				}
			}
		}
		if err := mpi.WaitAll(recvReqs); err != nil {
			//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
			return err
		}
		return mpi.WaitAll(syncSends)
	}
}
