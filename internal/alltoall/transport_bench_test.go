package alltoall

import (
	"fmt"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// benchChainCluster builds an n-machine cluster spread round-robin over a
// chain of switches (16 machines per switch) — the same shape the simulator
// benchmarks use, so schedules have real multi-phase structure and sync
// traffic instead of degenerating to a single phase.
func benchChainCluster(n int) *topology.Graph {
	g := topology.New()
	nsw := (n + 15) / 16
	sw := make([]int, nsw)
	for i := range sw {
		sw[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(sw[i-1], sw[i])
		}
	}
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw[i/16], m)
	}
	return g.MustValidate()
}

// benchScheduled compiles the paper's pairwise-synchronized routine for the
// n-machine chain cluster.
func benchScheduled(b *testing.B, n int) *Scheduled {
	b.Helper()
	g := benchChainCluster(n)
	s, err := schedule.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := syncplan.Build(g, s)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := NewScheduled(s, plan, PairwiseSync)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// runAlltoallBench drives one full all-to-all per iteration: every rank runs
// fn concurrently, the iteration completes when all ranks return. Reported
// ns/op is the wall time of a whole exchange; allocs/op and B/op are the
// process-wide totals per exchange (all ranks, all transport goroutines) —
// the figure the data-plane work optimizes. copies, when non-nil, returns
// the transport's cumulative userspace payload-copy count; its growth is
// reported as copies/op, the zero-copy path's figure of merit.
func runAlltoallBench(b *testing.B, comms []mpi.Comm, fn Func, msize int, copies func() uint64) {
	b.Helper()
	n := len(comms)
	bufs := make([]*Contig, n)
	for r := range bufs {
		bufs[r] = NewContig(n, msize)
		for p := 0; p < n; p++ {
			blk := bufs[r].SendBlock(p)
			for i := range blk {
				blk[i] = byte(r*31 + p*7 + i)
			}
		}
	}
	errs := make([]error, n)
	b.SetBytes(int64(n * (n - 1) * msize))
	b.ReportAllocs()
	var copies0 uint64
	if copies != nil {
		copies0 = copies()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(n)
		for r := 0; r < n; r++ {
			go func(r int) {
				defer wg.Done()
				errs[r] = fn(comms[r], bufs[r], msize)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				b.Fatalf("rank %d: %v", r, err)
			}
		}
	}
	b.StopTimer()
	if copies != nil {
		b.ReportMetric(float64(copies()-copies0)/float64(b.N), "copies/op")
	}
}

// transportBenchGrid is the msize × world-size grid both transport
// benchmarks share: small messages (the regime the paper's Figure 1 targets
// and where per-message overhead dominates), a mid size, and a large one.
var transportBenchGrid = []struct {
	n     int
	msize int
}{
	{4, 64},
	{4, 1024},
	{4, 65536},
	{8, 64},
	{8, 1024},
	{8, 65536},
	{16, 64},
	{16, 1024},
}

// BenchmarkMemAlltoall measures the scheduled routine over the in-process
// transport: no sockets, so what remains is matching-engine and per-op
// bookkeeping cost.
func BenchmarkMemAlltoall(b *testing.B) {
	for _, tc := range transportBenchGrid {
		b.Run(fmt.Sprintf("n=%d/msize=%d", tc.n, tc.msize), func(b *testing.B) {
			sc := benchScheduled(b, tc.n)
			comms := mem.NewWorld(tc.n)
			runAlltoallBench(b, comms, sc.Fn(), tc.msize, nil)
		})
	}
}

// BenchmarkShmAlltoall measures the scheduled routine over the
// shared-memory transport: pre-posted receives ride the single-copy direct
// path, so copies/op tracks how much traffic degraded to ring transit
// (2 copies) or heap overflow (2 copies) under skew.
func BenchmarkShmAlltoall(b *testing.B) {
	for _, tc := range transportBenchGrid {
		b.Run(fmt.Sprintf("n=%d/msize=%d", tc.n, tc.msize), func(b *testing.B) {
			sc := benchScheduled(b, tc.n)
			comms, w := shm.NewWorldComms(tc.n)
			defer w.Close()
			runAlltoallBench(b, comms, sc.Fn(), tc.msize, func() uint64 {
				s := w.Stats()
				return s.DirectPlacements + 2*s.RingTransits + 2*s.OverflowStages
			})
		})
	}
}

// BenchmarkTCPAlltoall measures the scheduled routine over loopback TCP with
// the default resilience (sequence numbers, acks, retransmit buffers) — the
// deployable data plane whose syscall and allocation cost this suite tracks.
func BenchmarkTCPAlltoall(b *testing.B) {
	for _, tc := range transportBenchGrid {
		b.Run(fmt.Sprintf("n=%d/msize=%d", tc.n, tc.msize), func(b *testing.B) {
			sc := benchScheduled(b, tc.n)
			comms, closeWorld, err := tcp.NewWorld(tc.n)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := closeWorld(); err != nil {
					b.Fatal(err)
				}
			}()
			runAlltoallBench(b, comms, sc.Fn(), tc.msize, func() uint64 {
				return comms[0].(interface{ TransportStats() tcp.Stats }).TransportStats().PayloadCopies
			})
		})
	}
}
