package alltoall

import (
	"fmt"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// nopComm is a do-nothing transport: every operation completes immediately
// and allocates nothing, so testing.AllocsPerRun against it isolates the
// scheduled routine's own allocation behaviour from the transport's.
type nopComm struct {
	rank, size int
	start      time.Time
}

type nopReq struct{}

func (nopReq) Wait() error { return nil }

func (c *nopComm) Rank() int                                  { return c.rank }
func (c *nopComm) Size() int                                  { return c.size }
func (c *nopComm) Now() float64                               { return time.Since(c.start).Seconds() }
func (c *nopComm) Isend(buf []byte, dst, tag int) mpi.Request { return nopReq{} }
func (c *nopComm) Irecv(buf []byte, src, tag int) mpi.Request { return nopReq{} }
func (c *nopComm) Barrier() error                             { return nil }

// allocTestScheduled compiles the pairwise-synchronized routine for a
// two-switch cluster small enough for a unit test but wide enough that the
// schedule has multiple phases and real sync traffic.
func allocTestScheduled(t *testing.T) *Scheduled {
	t.Helper()
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnect(s0, s1)
	const n = 8
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		if i < n/2 {
			g.MustConnect(s0, m)
		} else {
			g.MustConnect(s1, m)
		}
	}
	sched, err := schedule.Build(g.MustValidate())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := syncplan.Build(g.MustValidate(), sched)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScheduled(sched, plan, PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SyncCount() == 0 {
		t.Fatal("alloc test schedule has no sync traffic; widen the cluster")
	}
	return sc
}

// TestScheduledFnNoSteadyStateAllocs is the allocation-regression gate for
// the compiled routine: after the first run has populated the scratch pool,
// executing a whole program — pre-posting receives, waiting syncs, sending
// data, emitting syncs, draining — must not allocate. Transport allocations
// are excluded by construction (nopComm allocates nothing).
func TestScheduledFnNoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts; zero-alloc assertion only holds without it")
	}
	sc := allocTestScheduled(t)
	n := sc.NumRanks()
	const msize = 64
	comms := make([]*nopComm, n)
	bufs := make([]*Contig, n)
	start := time.Now()
	for r := 0; r < n; r++ {
		comms[r] = &nopComm{rank: r, size: n, start: start}
		bufs[r] = NewContig(n, msize)
	}
	fn := sc.Fn()
	// Warm the scratch pool: one run per rank.
	for r := 0; r < n; r++ {
		if err := fn(comms[r], bufs[r], msize); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < n; r++ {
		r := r
		allocs := testing.AllocsPerRun(50, func() {
			if err := fn(comms[r], bufs[r], msize); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("rank %d: %.1f allocs per run, want 0", r, allocs)
		}
	}
}
