//go:build !race

package alltoall

const raceEnabled = false
