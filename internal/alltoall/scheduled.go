package alltoall

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
)

// SyncMode selects how the scheduled algorithm keeps its phases separated at
// run time (Section 5 of the paper).
type SyncMode int

const (
	// PairwiseSync inserts the minimal pair-wise synchronization messages
	// computed by syncplan — the paper's scheme.
	PairwiseSync SyncMode = iota
	// BarrierSync separates every phase with a full barrier — the simple
	// scheme the paper rejects for its overhead; kept as an ablation.
	BarrierSync
	// NoSync performs the phases with no separation at all: each rank works
	// through its own sends in phase order but phases may drift across
	// ranks, reintroducing contention. Ablation for what synchronization
	// buys.
	NoSync
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case PairwiseSync:
		return "pairwise"
	case BarrierSync:
		return "barrier"
	case NoSync:
		return "nosync"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// syncRef identifies one synchronization message by peer rank and tag.
type syncRef struct {
	peer int
	tag  int
}

// sendStep is one outgoing data message of a rank. Its control traffic lives
// in the program's flat waits/emits arrays; the step holds half-open index
// ranges into them. Flat storage keeps each rank's whole plan in three
// contiguous allocations instead of two slices per step, so executing it
// walks memory linearly.
type sendStep struct {
	phase int
	dst   int
	// [waitLo, waitHi) indexes program.waits: syncs that must arrive before
	// sending.
	waitLo, waitHi int32
	// [emitLo, emitHi) indexes program.emits: syncs to issue once the send
	// completes.
	emitLo, emitHi int32
}

// program is the per-rank execution plan compiled from a schedule.
type program struct {
	// recvSrcs lists the sources this rank receives from, in phase order.
	recvSrcs []int
	// recvPhases[i] is the schedule phase of the message recvSrcs[i]
	// catches. Receives are pre-posted before any phase starts, so the
	// instrumentation needs this to attribute each one to its true phase.
	recvPhases []int
	// sends lists this rank's outgoing messages in phase order.
	sends []sendStep
	// waits and emits back the sendSteps' index ranges.
	waits []syncRef
	emits []syncRef
	// numPhases is the schedule's phase count (used by BarrierSync).
	numPhases int
}

// runScratch is the per-invocation working set of FnTimeout, pooled so a
// steady stream of alltoalls allocates nothing: the request slices are
// pre-sized to the largest program and the 1-byte sync buffers persist
// between runs.
type runScratch struct {
	recvReqs  []mpi.Request
	dataSends []mpi.Request
	syncSends []mpi.Request
	syncByte  [1]byte // payload for emitted syncs (value 1, set once)
	waitByte  [1]byte // receive buffer for awaited syncs
}

// Scheduled is the paper's contribution compiled to a runnable routine: a
// topology-customized MPI_Alltoall that performs the contention-free phases
// of a schedule, separated by the synchronization mode.
//
// Construct it once per (topology, schedule) with NewScheduled and reuse it
// across runs and transports; Fn returns the algorithm function.
type Scheduled struct {
	mode     SyncMode
	programs []program
	// maxRecvs/maxSends/maxEmits size a runScratch so one pooled scratch
	// fits any rank's program.
	maxRecvs int
	maxSends int
	maxEmits int
	scratch  sync.Pool
}

// NewScheduled compiles a schedule and its synchronization plan into a
// runnable algorithm. plan may be nil when mode is BarrierSync or NoSync.
func NewScheduled(s *schedule.Schedule, plan *syncplan.Plan, mode SyncMode) (*Scheduled, error) {
	if mode == PairwiseSync && plan == nil {
		return nil, fmt.Errorf("alltoall: PairwiseSync requires a syncplan")
	}
	n := s.NumRanks
	progs := make([]program, n)
	for r := range progs {
		progs[r].numPhases = len(s.Phases)
	}
	// Counting pass: exact send/recv totals per rank, so every program slice
	// is allocated once at its final size.
	sendN := make([]int, n)
	recvN := make([]int, n)
	total := 0
	for _, phase := range s.Phases {
		total += len(phase)
		for _, m := range phase {
			sendN[m.Src]++
			recvN[m.Dst]++
		}
	}
	for r := range progs {
		progs[r].sends = make([]sendStep, 0, sendN[r])
		progs[r].recvSrcs = make([]int, 0, recvN[r])
		progs[r].recvPhases = make([]int, 0, recvN[r])
	}
	// Placement pass. Iterating phases in order IS the counting sort's
	// distribution step — the phase index is the key and the phases are the
	// buckets, already in key order — so each rank's sends and recvSrcs come
	// out phase-sorted with no comparison sort.
	// stepAt maps (src, dst) to src's step index for the sync wiring below;
	// a flat n*n array beats a map keyed by Message at every size we run.
	stepAt := make([]int32, n*n)
	for i := range stepAt {
		stepAt[i] = -1
	}
	for pi, phase := range s.Phases {
		for _, m := range phase {
			progs[m.Dst].recvSrcs = append(progs[m.Dst].recvSrcs, m.Src)
			progs[m.Dst].recvPhases = append(progs[m.Dst].recvPhases, pi)
			stepAt[m.Src*n+m.Dst] = int32(len(progs[m.Src].sends))
			progs[m.Src].sends = append(progs[m.Src].sends, sendStep{phase: pi, dst: m.Dst})
		}
	}
	sc := &Scheduled{mode: mode, programs: progs}
	// Wire the synchronizations. The i-th sync of the (deterministically
	// sorted) plan uses tag tagSync+i on both sides. Two passes: count
	// waits/emits per step, turn the counts into flat-array offsets, then
	// place the refs.
	if mode == PairwiseSync {
		find := func(m schedule.Message) (int, int32, error) {
			si := stepAt[m.Src*n+m.Dst]
			if si < 0 {
				return 0, 0, fmt.Errorf("alltoall: sync refers to unscheduled message %v", m)
			}
			return m.Src, si, nil
		}
		for _, sy := range plan.Syncs {
			er, ei, err := find(sy.After)
			if err != nil {
				return nil, err
			}
			wr, wi, err := find(sy.Before)
			if err != nil {
				return nil, err
			}
			progs[er].sends[ei].emitHi++ // counts first, offsets below
			progs[wr].sends[wi].waitHi++
		}
		for r := range progs {
			p := &progs[r]
			var nw, ne int32
			for i := range p.sends {
				st := &p.sends[i]
				st.waitLo, st.waitHi = nw, nw+st.waitHi
				st.emitLo, st.emitHi = ne, ne+st.emitHi
				nw, ne = st.waitHi, st.emitHi
			}
			p.waits = make([]syncRef, nw)
			p.emits = make([]syncRef, ne)
		}
		// Placement cursors: next free slot per step, starting at each Lo.
		cursor := make([]int32, 0, total)
		curBase := make([]int, n+1)
		for r := range progs {
			curBase[r] = len(cursor)
			for i := range progs[r].sends {
				cursor = append(cursor, progs[r].sends[i].waitLo)
			}
		}
		curBase[n] = len(cursor)
		ecursor := make([]int32, len(cursor))
		for r := range progs {
			for i := range progs[r].sends {
				ecursor[curBase[r]+i] = progs[r].sends[i].emitLo
			}
		}
		for i, sy := range plan.Syncs {
			er, ei, _ := find(sy.After)
			wr, wi, _ := find(sy.Before)
			ec := &ecursor[curBase[er]+int(ei)]
			progs[er].emits[*ec] = syncRef{peer: sy.Before.Src, tag: tagSync + i}
			*ec++
			wc := &cursor[curBase[wr]+int(wi)]
			progs[wr].waits[*wc] = syncRef{peer: sy.After.Src, tag: tagSync + i}
			*wc++
		}
	}
	for _, p := range progs {
		if len(p.recvSrcs) > sc.maxRecvs {
			sc.maxRecvs = len(p.recvSrcs)
		}
		if len(p.sends) > sc.maxSends {
			sc.maxSends = len(p.sends)
		}
		if len(p.emits) > sc.maxEmits {
			sc.maxEmits = len(p.emits)
		}
	}
	sc.scratch.New = func() any {
		s := &runScratch{
			recvReqs:  make([]mpi.Request, 0, sc.maxRecvs),
			dataSends: make([]mpi.Request, 0, sc.maxSends),
			syncSends: make([]mpi.Request, 0, sc.maxEmits),
		}
		s.syncByte[0] = 1
		return s
	}
	return sc, nil
}

// Mode returns the synchronization mode the routine was compiled with.
func (sc *Scheduled) Mode() SyncMode { return sc.mode }

// NumRanks returns the world size the routine was compiled for.
func (sc *Scheduled) NumRanks() int { return len(sc.programs) }

// SyncCount returns the total number of synchronization messages the
// compiled routine sends (0 unless PairwiseSync).
func (sc *Scheduled) SyncCount() int {
	total := 0
	for _, p := range sc.programs {
		total += len(p.emits)
	}
	return total
}

// Fn returns the algorithm function executing the compiled schedule.
func (sc *Scheduled) Fn() Func { return sc.FnTimeout(0) }

// FnTimeout returns the algorithm function with every blocking step bounded
// by d (d <= 0 means unbounded, identical to Fn). With a deadline, the
// routine fails closed instead of hanging when a peer dies or stalls: each
// sync wait and data send is bounded individually, the final drain of
// pre-posted receives shares one budget of d, and errors carry the phase and
// peer so the caller can tell which part of the schedule broke. On
// transports with typed failure detection (tcp), a dead peer surfaces as a
// *mpi.RankError well before the deadline; the deadline is the backstop for
// silent loss.
//
// The returned function is safe for concurrent use (one call per rank) and
// allocation-free in the steady state: its working set comes from a pool of
// pre-sized scratch buffers. Scratch is only recycled on the success path —
// after an error, a timed-out receive may still hold the scratch's sync
// buffer, so the whole scratch is abandoned to the garbage collector.
func (sc *Scheduled) FnTimeout(d time.Duration) Func {
	//aapc:noalloc the per-run closure is the steady-state hot path (see alloc gates)
	return func(c mpi.Comm, b Buffers, msize int) error {
		if c.Size() != len(sc.programs) {
			return fmt.Errorf("alltoall: routine compiled for %d ranks, world has %d",
				len(sc.programs), c.Size())
		}
		prog := &sc.programs[c.Rank()]
		copySelf(c, b)

		scr := sc.scratch.Get().(*runScratch)

		// When the comm is instrumented (obsv.Instrument), mark phase
		// boundaries and synchronization stalls so phase drift is measurable
		// on real transports, not just in the simulator. The phaser hints
		// each pre-posted receive's true schedule phase — without it they
		// would all be recorded as phase -1.
		marker := obsv.MarkerFor(c)
		phaser := obsv.PhaserFor(c)

		// Typed buffers + typed transport is the zero-copy fast path; the
		// mpi package-level helpers fall back to pack/unpack transparently
		// on transports without datatype support.
		tb, typed := b.(TypedBuffers)
		// A Flusher transport lets emit-after-complete ride the wire-entry
		// watermark (bytes handed to the kernel) instead of the delivery
		// ack, so phase boundaries cost a local writer handoff, not a
		// network round trip.
		flusher, _ := c.(mpi.Flusher)

		// Pre-post every data receive; ordering across sources is enforced
		// by the senders, and tags distinguish nothing: each (src, dst)
		// pair occurs exactly once. Pre-posting is also what keeps the tcp
		// receive path zero-copy: an already-posted receive lets the read
		// loop place payload bytes straight into the destination block.
		recvReqs := scr.recvReqs[:0]
		for i, src := range prog.recvSrcs {
			if phaser != nil {
				phaser.SetNextOpPhase(prog.recvPhases[i])
			}
			if typed {
				base, dt := tb.RecvView(src)
				recvReqs = append(recvReqs, mpi.IrecvTyped(c, base, dt, src, tagData))
			} else {
				recvReqs = append(recvReqs, c.Irecv(b.RecvBlock(src), src, tagData))
			}
		}

		// Sends are issued nonblocking and waited lazily. The schedule's
		// required orderings all flow through the sync plan: every
		// cross-phase pair of link-sharing messages — including two sends
		// of this very rank, which always share its uplink — is ordered by
		// an emit/wait chain, so a send whose completion nothing waits on
		// (emitLo == emitHi) can stay in flight while later phases start.
		// Only sends that emit syncs are waited inline (emit-after-
		// complete), which matters on the resilient tcp transport where
		// borrowed zero-copy sends complete on the delivery ack: deferred
		// waits overlap those ack round-trips instead of serializing them.
		dataSends := scr.dataSends[:0]
		syncSends := scr.syncSends[:0]
		phase := 0
		curPhase := -1
		for i := range prog.sends {
			st := &prog.sends[i]
			if sc.mode == BarrierSync {
				// Enter the send's phase, barrier-separated. Earlier phases'
				// sends must complete before their closing barrier.
				for phase < st.phase {
					if err := mpi.WaitAllTimeout(dataSends, d); err != nil {
						//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
						return fmt.Errorf("alltoall: data send drain: %w", err)
					}
					for j := range dataSends {
						dataSends[j] = nil
					}
					dataSends = dataSends[:0]
					if err := c.Barrier(); err != nil {
						//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
						return err
					}
					phase++
				}
			}
			if marker != nil && st.phase != curPhase {
				marker.MarkPhase(st.phase)
			}
			curPhase = st.phase
			for _, w := range prog.waits[st.waitLo:st.waitHi] {
				var waitStart float64
				if marker != nil {
					waitStart = c.Now()
				}
				if err := mpi.RecvTimeout(c, scr.waitByte[:], w.peer, w.tag, d); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return fmt.Errorf("alltoall: phase %d sync wait from %d: %w", st.phase, w.peer, err)
				}
				if marker != nil {
					marker.MarkSyncWait(w.peer, waitStart, c.Now())
				}
			}
			var req mpi.Request
			if typed {
				base, dt := tb.SendView(st.dst)
				req = mpi.IsendTyped(c, base, dt, st.dst, tagData)
			} else {
				req = c.Isend(b.SendBlock(st.dst), st.dst, tagData)
			}
			if st.emitHi > st.emitLo {
				// Emit-after-complete: later messages are ordered on this
				// send's entry to the wire. On a Flusher transport the
				// wire-entry watermark is that ordering point and the
				// request itself drains lazily; elsewhere the request's own
				// completion is the only handle.
				if flusher != nil {
					if err := flusher.Flush(st.dst, d); err != nil {
						//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
						return fmt.Errorf("alltoall: send phase %d to %d: %w", st.phase, st.dst, err)
					}
					dataSends = append(dataSends, req)
				} else if err := mpi.WaitTimeout(req, d); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return fmt.Errorf("alltoall: send phase %d to %d: %w", st.phase, st.dst, err)
				}
				for _, e := range prog.emits[st.emitLo:st.emitHi] {
					syncSends = append(syncSends, c.Isend(scr.syncByte[:], e.peer, e.tag))
				}
			} else {
				dataSends = append(dataSends, req)
			}
		}
		if sc.mode == BarrierSync {
			// Ranks must participate in the remaining barriers even after
			// their last send; in-flight sends drain before the first one.
			for ; phase < prog.numPhases-1; phase++ {
				if err := mpi.WaitAllTimeout(dataSends, d); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return fmt.Errorf("alltoall: data send drain: %w", err)
				}
				for j := range dataSends {
					dataSends[j] = nil
				}
				dataSends = dataSends[:0]
				if err := c.Barrier(); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return err
				}
			}
		}
		if err := mpi.WaitAllTimeout(dataSends, d); err != nil {
			//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
			return fmt.Errorf("alltoall: data send drain: %w", err)
		}
		if err := mpi.WaitAllTimeout(recvReqs, d); err != nil {
			//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
			return fmt.Errorf("alltoall: data receive: %w", err)
		}
		if err := mpi.WaitAllTimeout(syncSends, d); err != nil {
			return fmt.Errorf("alltoall: sync send drain: %w", err)
		}
		// Success: every request above completed, so nothing references the
		// scratch anymore and it can serve the next run.
		for i := range recvReqs {
			recvReqs[i] = nil
		}
		for i := range dataSends {
			dataSends[i] = nil
		}
		for i := range syncSends {
			syncSends[i] = nil
		}
		scr.recvReqs = recvReqs[:0]
		scr.dataSends = dataSends[:0]
		scr.syncSends = syncSends[:0]
		sc.scratch.Put(scr)
		return nil
	}
}
