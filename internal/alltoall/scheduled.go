package alltoall

import (
	"fmt"
	"sort"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
)

// SyncMode selects how the scheduled algorithm keeps its phases separated at
// run time (Section 5 of the paper).
type SyncMode int

const (
	// PairwiseSync inserts the minimal pair-wise synchronization messages
	// computed by syncplan — the paper's scheme.
	PairwiseSync SyncMode = iota
	// BarrierSync separates every phase with a full barrier — the simple
	// scheme the paper rejects for its overhead; kept as an ablation.
	BarrierSync
	// NoSync performs the phases with no separation at all: each rank works
	// through its own sends in phase order but phases may drift across
	// ranks, reintroducing contention. Ablation for what synchronization
	// buys.
	NoSync
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case PairwiseSync:
		return "pairwise"
	case BarrierSync:
		return "barrier"
	case NoSync:
		return "nosync"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// syncRef identifies one synchronization message by peer rank and tag.
type syncRef struct {
	peer int
	tag  int
}

// sendStep is one outgoing data message of a rank, with the control traffic
// around it.
type sendStep struct {
	phase int
	dst   int
	// waitFor lists the sync messages that must arrive before sending.
	waitFor []syncRef
	// emit lists the sync messages to issue once the send completes.
	emit []syncRef
}

// program is the per-rank execution plan compiled from a schedule.
type program struct {
	// recvSrcs lists the sources this rank receives from, in phase order.
	recvSrcs []int
	// sends lists this rank's outgoing messages in phase order.
	sends []sendStep
	// numPhases is the schedule's phase count (used by BarrierSync).
	numPhases int
}

// Scheduled is the paper's contribution compiled to a runnable routine: a
// topology-customized MPI_Alltoall that performs the contention-free phases
// of a schedule, separated by the synchronization mode.
//
// Construct it once per (topology, schedule) with NewScheduled and reuse it
// across runs and transports; Fn returns the algorithm function.
type Scheduled struct {
	mode     SyncMode
	programs []program
}

// NewScheduled compiles a schedule and its synchronization plan into a
// runnable algorithm. plan may be nil when mode is BarrierSync or NoSync.
func NewScheduled(s *schedule.Schedule, plan *syncplan.Plan, mode SyncMode) (*Scheduled, error) {
	if mode == PairwiseSync && plan == nil {
		return nil, fmt.Errorf("alltoall: PairwiseSync requires a syncplan")
	}
	n := s.NumRanks
	progs := make([]program, n)
	for r := range progs {
		progs[r].numPhases = len(s.Phases)
	}
	// Data messages in phase order.
	for pi, phase := range s.Phases {
		for _, m := range phase {
			progs[m.Dst].recvSrcs = append(progs[m.Dst].recvSrcs, m.Src)
			progs[m.Src].sends = append(progs[m.Src].sends, sendStep{phase: pi, dst: m.Dst})
		}
	}
	for r := range progs {
		sort.SliceStable(progs[r].sends, func(i, j int) bool {
			return progs[r].sends[i].phase < progs[r].sends[j].phase
		})
	}
	// Wire the synchronizations. The i-th sync of the (deterministically
	// sorted) plan uses tag tagSync+i on both sides.
	if mode == PairwiseSync {
		stepOf := make(map[schedule.Message]*sendStep)
		for r := range progs {
			for i := range progs[r].sends {
				st := &progs[r].sends[i]
				stepOf[schedule.Message{Src: r, Dst: st.dst}] = st
			}
		}
		for i, sy := range plan.Syncs {
			after, ok := stepOf[sy.After]
			if !ok {
				return nil, fmt.Errorf("alltoall: sync refers to unscheduled message %v", sy.After)
			}
			before, ok := stepOf[sy.Before]
			if !ok {
				return nil, fmt.Errorf("alltoall: sync refers to unscheduled message %v", sy.Before)
			}
			after.emit = append(after.emit, syncRef{peer: sy.Before.Src, tag: tagSync + i})
			before.waitFor = append(before.waitFor, syncRef{peer: sy.After.Src, tag: tagSync + i})
		}
	}
	return &Scheduled{mode: mode, programs: progs}, nil
}

// Mode returns the synchronization mode the routine was compiled with.
func (sc *Scheduled) Mode() SyncMode { return sc.mode }

// NumRanks returns the world size the routine was compiled for.
func (sc *Scheduled) NumRanks() int { return len(sc.programs) }

// SyncCount returns the total number of synchronization messages the
// compiled routine sends (0 unless PairwiseSync).
func (sc *Scheduled) SyncCount() int {
	total := 0
	for _, p := range sc.programs {
		for _, st := range p.sends {
			total += len(st.emit)
		}
	}
	return total
}

// Fn returns the algorithm function executing the compiled schedule.
func (sc *Scheduled) Fn() Func { return sc.FnTimeout(0) }

// FnTimeout returns the algorithm function with every blocking step bounded
// by d (d <= 0 means unbounded, identical to Fn). With a deadline, the
// routine fails closed instead of hanging when a peer dies or stalls: each
// sync wait and data send is bounded individually, the final drain of
// pre-posted receives shares one budget of d, and errors carry the phase and
// peer so the caller can tell which part of the schedule broke. On
// transports with typed failure detection (tcp), a dead peer surfaces as a
// *mpi.RankError well before the deadline; the deadline is the backstop for
// silent loss.
func (sc *Scheduled) FnTimeout(d time.Duration) Func {
	return func(c mpi.Comm, b Buffers, msize int) error {
		if c.Size() != len(sc.programs) {
			return fmt.Errorf("alltoall: routine compiled for %d ranks, world has %d",
				len(sc.programs), c.Size())
		}
		prog := &sc.programs[c.Rank()]
		copySelf(c, b)

		// Pre-post every data receive; ordering across sources is enforced
		// by the senders, and tags distinguish nothing: each (src, dst)
		// pair occurs exactly once.
		recvReqs := make([]mpi.Request, len(prog.recvSrcs))
		for i, src := range prog.recvSrcs {
			recvReqs[i] = c.Irecv(b.RecvBlock(src), src, tagData)
		}

		// When the comm is instrumented (obsv.Instrument), mark phase
		// boundaries and synchronization stalls so phase drift is measurable
		// on real transports, not just in the simulator.
		marker := obsv.MarkerFor(c)

		var syncSends []mpi.Request
		syncByte := []byte{1}
		phase := 0
		curPhase := -1
		for _, st := range prog.sends {
			if sc.mode == BarrierSync {
				// Enter the send's phase, barrier-separated.
				for phase < st.phase {
					if err := c.Barrier(); err != nil {
						return err
					}
					phase++
				}
			}
			if marker != nil && st.phase != curPhase {
				marker.MarkPhase(st.phase)
			}
			curPhase = st.phase
			for _, w := range st.waitFor {
				var waitStart float64
				if marker != nil {
					waitStart = c.Now()
				}
				if err := mpi.RecvTimeout(c, make([]byte, 1), w.peer, w.tag, d); err != nil {
					return fmt.Errorf("alltoall: phase %d sync wait from %d: %w", st.phase, w.peer, err)
				}
				if marker != nil {
					marker.MarkSyncWait(w.peer, waitStart, c.Now())
				}
			}
			if err := mpi.SendTimeout(c, b.SendBlock(st.dst), st.dst, tagData, d); err != nil {
				return fmt.Errorf("alltoall: send phase %d to %d: %w", st.phase, st.dst, err)
			}
			for _, e := range st.emit {
				syncSends = append(syncSends, c.Isend(syncByte, e.peer, e.tag))
			}
		}
		if sc.mode == BarrierSync {
			// Ranks must participate in the remaining barriers even after
			// their last send.
			for ; phase < prog.numPhases-1; phase++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
		}
		if err := mpi.WaitAllTimeout(recvReqs, d); err != nil {
			return fmt.Errorf("alltoall: data receive: %w", err)
		}
		if err := mpi.WaitAllTimeout(syncSends, d); err != nil {
			return fmt.Errorf("alltoall: sync send drain: %w", err)
		}
		return nil
	}
}
