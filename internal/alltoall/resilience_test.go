package alltoall_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// clusterFromSeed derives a random valid cluster from a quick-check seed,
// like the generator property tests do.
func clusterFromSeed(seed int64) *topology.Graph {
	rng := rand.New(rand.NewSource(seed))
	return topology.RandomCluster(topology.RandomOptions{
		Switches: 1 + rng.Intn(4),
		Machines: 2 + rng.Intn(6),
		Rand:     rng,
	})
}

// runVerified executes the routine on every rank, filling send blocks with
// the repo's verification pattern and checking every received byte.
func runVerified(c mpi.Comm, fn alltoall.Func, msize int) error {
	n, me := c.Size(), c.Rank()
	b := alltoall.NewContig(n, msize)
	for dst := 0; dst < n; dst++ {
		blk := b.SendBlock(dst)
		for i := range blk {
			blk[i] = byte(me*31 + dst*7 + i)
		}
	}
	if err := fn(c, b, msize); err != nil {
		return err
	}
	for src := 0; src < n; src++ {
		blk := b.RecvBlock(src)
		for i := range blk {
			if blk[i] != byte(src*31+me*7+i) {
				return fmt.Errorf("rank %d: corrupt byte %d from %d", me, i, src)
			}
		}
	}
	return nil
}

// TestScheduledFaultyCommProperty is the quick property: for random trees
// and random benign fault plans, the Scheduled routine over an
// injected-fault communicator either completes byte-exact or fails closed
// with a typed error — never silently corrupts, never hangs.
func TestScheduledFaultyCommProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := clusterFromSeed(seed)
		sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		n := g.NumMachines()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		plan := &faults.Plan{Seed: seed}
		for i := 0; i < 1+rng.Intn(3); i++ {
			plan.Rules = append(plan.Rules, faults.Rule{
				Kind:  faults.Delay,
				Src:   faults.Any,
				Dst:   rng.Intn(n),
				Delay: time.Duration(rng.Intn(500)+100) * time.Microsecond,
				Prob:  0.3,
			})
		}
		plan.Rules = append(plan.Rules, faults.Rule{
			Kind:  faults.Stall,
			Src:   rng.Intn(n),
			Delay: time.Duration(rng.Intn(500)+100) * time.Microsecond,
			Count: 1 + rng.Intn(3),
		})
		inj := faults.New(plan)
		inj.SetOpTimeout(30 * time.Second)
		fn := sc.FnTimeout(30 * time.Second)
		msize := 1 + rng.Intn(64)
		err = mem.Run(n, func(c mpi.Comm) error {
			return runVerified(inj.Wrap(c), fn, msize)
		})
		if err != nil {
			t.Logf("seed %d (n=%d): %v", seed, n, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduledLossyCommFailsClosed: with messages actually lost (drop
// rules, no retransmission on mem), the routine must return a typed error,
// not deadlock and not report success with corrupt buffers.
func TestScheduledLossyCommFailsClosed(t *testing.T) {
	prop := func(seed int64) bool {
		g := clusterFromSeed(seed)
		sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
		if err != nil {
			return false
		}
		n := g.NumMachines()
		plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
			{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Prob: 0.4},
		}}
		inj := faults.New(plan)
		inj.SetOpTimeout(300 * time.Millisecond)
		fn := sc.FnTimeout(300 * time.Millisecond)
		done := make(chan error, 1)
		go func() {
			done <- mem.Run(n, func(c mpi.Comm) error {
				return runVerified(inj.Wrap(c), fn, 16)
			})
		}()
		var err2 error
		select {
		case err2 = <-done:
		case <-time.After(30 * time.Second):
			t.Log("routine hung despite deadlines")
			return false
		}
		if len(inj.Events()) == 0 {
			return true // plan fired nothing; vacuous but not a failure
		}
		if err2 == nil {
			// Losing 40% of messages and still "succeeding" means every
			// byte verified — possible only if no data message was dropped.
			for _, e := range inj.Events() {
				if e.Kind == faults.Drop {
					t.Logf("seed %d: drops fired yet the routine reported success", seed)
					return false
				}
			}
			return true
		}
		if _, ok := mpi.AsRankError(err2); ok {
			return true
		}
		if mpi.IsTimeout(err2) {
			return true
		}
		t.Logf("seed %d: untyped failure: %v", seed, err2)
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduledKillOneRankTCP is the headline acceptance test: compile the
// paper's routine for a real topology, run it over the resilient TCP
// transport, kill one rank mid-collective — every surviving rank must get
// a coherent typed *mpi.RankError within the deadline, not deadlock.
func TestScheduledKillOneRankTCP(t *testing.T) {
	g, err := harness.Preset("fig1")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumMachines()
	victim := n / 2
	// The victim dies a few operations into the collective.
	plan := &faults.Plan{Rules: []faults.Rule{
		{Kind: faults.Kill, Src: victim, Dst: faults.Any, After: 3},
	}}
	inj := faults.New(plan)
	fn := sc.FnTimeout(5 * time.Second)
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- tcp.Run(n, func(c mpi.Comm) error {
			err := runVerified(inj.WrapRankOnly(c), fn, 256)
			if c.Rank() == victim {
				return nil // the victim's own typed error is expected noise
			}
			return err
		}, tcp.WithOpDeadline(5*time.Second))
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(45 * time.Second):
		t.Fatal("collective hung after a rank was killed")
	}
	if !inj.Killed(victim) {
		t.Fatal("kill rule never fired")
	}
	if runErr == nil {
		t.Fatal("survivors reported success although a rank died mid-collective")
	}
	re, ok := mpi.AsRankError(runErr)
	if !ok {
		t.Fatalf("survivor error is not typed: %v", runErr)
	}
	if re.Rank != victim {
		t.Fatalf("RankError names rank %d, want %d (err: %v)", re.Rank, victim, runErr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("failure took %v to surface", elapsed)
	}
}

// TestScheduledTransientDropsTCP: the same compiled routine completes
// byte-exact over TCP while connections are being dropped and recovered
// underneath it.
func TestScheduledTransientDropsTCP(t *testing.T) {
	g, err := harness.Preset("fig1")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumMachines()
	plan := &faults.Plan{Seed: 21, Rules: []faults.Rule{
		{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Prob: 0.05, Count: 4},
	}}
	inj := faults.New(plan)
	fn := sc.FnTimeout(30 * time.Second)
	err = tcp.Run(n, func(c mpi.Comm) error {
		return runVerified(c, fn, 512)
	}, tcp.WithFaults(inj), tcp.WithOpDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("scheduled all-to-all under transient drops: %v", err)
	}
}
