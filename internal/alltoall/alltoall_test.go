package alltoall

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// fillPattern writes a distinctive byte pattern into rank's send blocks:
// byte j of the block for dst is a function of (rank, dst, j).
func fillPattern(b *Contig, rank, n int) {
	for dst := 0; dst < n; dst++ {
		blk := b.SendBlock(dst)
		for j := range blk {
			blk[j] = byte(rank*31 + dst*7 + j)
		}
	}
}

// checkPattern verifies rank's receive blocks contain what each source sent.
func checkPattern(b *Contig, rank, n int) error {
	for src := 0; src < n; src++ {
		blk := b.RecvBlock(src)
		for j := range blk {
			if want := byte(src*31 + rank*7 + j); blk[j] != want {
				return fmt.Errorf("rank %d block from %d byte %d: got %d want %d",
					rank, src, j, blk[j], want)
			}
		}
	}
	return nil
}

// runOnMem runs an algorithm on the in-process transport and verifies the
// full data permutation.
func runOnMem(t *testing.T, name string, fn Func, n, msize int) {
	t.Helper()
	var mu sync.Mutex
	bufs := make(map[int]*Contig)
	err := mem.Run(n, func(c mpi.Comm) error {
		b := NewContig(n, msize)
		fillPattern(b, c.Rank(), n)
		mu.Lock()
		bufs[c.Rank()] = b
		mu.Unlock()
		return fn(c, b, msize)
	})
	if err != nil {
		t.Fatalf("%s n=%d msize=%d: %v", name, n, msize, err)
	}
	for r := 0; r < n; r++ {
		if err := checkPattern(bufs[r], r, n); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBaselineAlgorithmsCorrect(t *testing.T) {
	algos := map[string]Func{
		"simple":        Simple,
		"simple-offset": SimpleOffset,
		"ring":          RingExchange,
		"bruck":         Bruck,
		"mpich":         MPICH,
	}
	for name, fn := range algos {
		for _, n := range []int{1, 2, 3, 5, 8, 13} {
			for _, msize := range []int{1, 7, 64, 1000} {
				runOnMem(t, name, fn, n, msize)
			}
		}
	}
}

func TestPairwiseCorrectPowerOfTwo(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		runOnMem(t, "pairwise", Pairwise, n, 256)
	}
}

func TestPairwiseRejectsNonPowerOfTwo(t *testing.T) {
	err := mem.Run(6, func(c mpi.Comm) error {
		return Pairwise(c, NewContig(6, 8), 8)
	})
	if err == nil {
		t.Fatal("want error for non-power-of-two world")
	}
}

func TestMPICHDispatch(t *testing.T) {
	// All three regimes must produce correct results; dispatch itself is
	// exercised by message size.
	for _, msize := range []int{64, 256, 1024, 32768, 40000} {
		runOnMem(t, "mpich", MPICH, 8, msize) // power of two -> pairwise for large
		runOnMem(t, "mpich", MPICH, 6, msize) // non-power-of-two -> ring for large
	}
}

// fig1 is the running example cluster from the paper.
func fig1(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.ParseString(`
switches s0 s1 s2 s3
machines n0 n1 n2 n3 n4 n5
link s0 n0
link s0 n1
link s0 s2
link s2 n2
link s1 s0
link s1 s3
link s1 n5
link s3 n3
link s3 n4
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildScheduled(t testing.TB, g *topology.Graph, mode SyncMode) *Scheduled {
	t.Helper()
	s, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var plan *syncplan.Plan
	if mode == PairwiseSync {
		plan, err = syncplan.Build(g, s)
		if err != nil {
			t.Fatal(err)
		}
	}
	sc, err := NewScheduled(s, plan, mode)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScheduledCorrectOnMem(t *testing.T) {
	g := fig1(t)
	for _, mode := range []SyncMode{PairwiseSync, BarrierSync, NoSync} {
		sc := buildScheduled(t, g, mode)
		if sc.NumRanks() != 6 {
			t.Fatalf("NumRanks = %d", sc.NumRanks())
		}
		runOnMem(t, "scheduled/"+mode.String(), sc.Fn(), 6, 512)
	}
}

func TestScheduledCorrectOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(4),
			Machines: 3 + rng.Intn(10),
			Rand:     rng,
		})
		sc := buildScheduled(t, g, PairwiseSync)
		runOnMem(t, "scheduled", sc.Fn(), g.NumMachines(), 128)
	}
}

func TestScheduledCorrectOnSimnet(t *testing.T) {
	// The simulator moves real bytes too; verify the permutation end to end
	// in virtual time.
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	w, err := simnet.NewWorld(simnet.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	const msize = 2048
	var mu sync.Mutex
	bufs := make(map[int]*Contig)
	err = w.Run(func(c mpi.Comm) error {
		b := NewContig(c.Size(), msize)
		fillPattern(b, c.Rank(), c.Size())
		mu.Lock()
		bufs[c.Rank()] = b
		mu.Unlock()
		return sc.Fn()(c, b, msize)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		if err := checkPattern(bufs[r], r, 6); err != nil {
			t.Error(err)
		}
	}
}

func TestScheduledNearPeakOnIdealNetwork(t *testing.T) {
	// On an ideal fluid network (MinEfficiency 1, tiny alpha) the scheduled
	// algorithm must approach the best-case time load*msize/B; the unsched-
	// uled baseline must not beat the bound.
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	const (
		bw    = 1e6
		msize = 100000
		alpha = 1e-6
	)
	elapsed := func(fn Func) float64 {
		w, err := simnet.NewWorld(simnet.Config{
			Graph:          g,
			LinkBandwidth:  bw,
			StartupLatency: alpha,
			MinEfficiency:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(c mpi.Comm) error {
			return fn(c, NewShared(msize), msize)
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	best := g.BestCaseTime(msize, bw) // 9 * msize / bw
	ours := elapsed(sc.Fn())
	if ours < best {
		t.Errorf("scheduled %.4g beat the physical bound %.4g", ours, best)
	}
	if ours > best*1.15 {
		t.Errorf("scheduled %.4g more than 15%% off the bound %.4g", ours, best)
	}
	lam := elapsed(Simple)
	if lam < best {
		t.Errorf("LAM %.4g beat the physical bound %.4g", lam, best)
	}
}

func TestScheduledSyncCounts(t *testing.T) {
	g := fig1(t)
	withSync := buildScheduled(t, g, PairwiseSync)
	if withSync.SyncCount() == 0 {
		t.Error("pairwise routine has no syncs")
	}
	noSync := buildScheduled(t, g, NoSync)
	if noSync.SyncCount() != 0 {
		t.Error("nosync routine has syncs")
	}
	if withSync.Mode() != PairwiseSync || noSync.Mode() != NoSync {
		t.Error("mode accessor broken")
	}
}

func TestScheduledWorldSizeMismatch(t *testing.T) {
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	err := mem.Run(4, func(c mpi.Comm) error {
		return sc.Fn()(c, NewContig(4, 8), 8)
	})
	if err == nil {
		t.Fatal("want world-size mismatch error")
	}
}

func TestNewScheduledRequiresPlan(t *testing.T) {
	g := fig1(t)
	s, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduled(s, nil, PairwiseSync); err == nil {
		t.Error("want error for missing plan")
	}
	if _, err := NewScheduled(s, nil, BarrierSync); err != nil {
		t.Errorf("barrier mode should not need a plan: %v", err)
	}
}

func TestSyncModeString(t *testing.T) {
	if PairwiseSync.String() != "pairwise" || BarrierSync.String() != "barrier" ||
		NoSync.String() != "nosync" || SyncMode(9).String() == "" {
		t.Error("SyncMode.String broken")
	}
}

func TestContigAndSharedBuffers(t *testing.T) {
	cb := NewContig(4, 16)
	if len(cb.SendBlock(3)) != 16 || len(cb.RecvBlock(0)) != 16 {
		t.Error("contig block sizes wrong")
	}
	cb.SendBlock(2)[0] = 42
	if cb.Send[32] != 42 {
		t.Error("contig block aliasing wrong")
	}
	sb := NewShared(16)
	if &sb.SendBlock(0)[0] != &sb.SendBlock(3)[0] {
		t.Error("shared blocks must alias")
	}
}

func TestSingleRankWorlds(t *testing.T) {
	for name, fn := range map[string]Func{
		"simple": Simple, "offset": SimpleOffset, "ring": RingExchange, "bruck": Bruck,
	} {
		runOnMem(t, name, fn, 1, 32)
	}
}

func TestWindowedCorrect(t *testing.T) {
	for _, window := range []int{1, 2, 4, 16} {
		for _, n := range []int{1, 2, 5, 8} {
			runOnMem(t, fmt.Sprintf("windowed-%d", window), Windowed(window), n, 300)
		}
	}
}

func TestWindowedBadWindow(t *testing.T) {
	err := mem.Run(2, func(c mpi.Comm) error {
		return Windowed(0)(c, NewContig(2, 8), 8)
	})
	if err == nil {
		t.Fatal("want error for window 0")
	}
}

func TestWindowedThrottlesContention(t *testing.T) {
	// On the simulator, a small window limits concurrent flows and improves
	// completion time versus full fan-out on a congested star when the
	// efficiency penalty is active.
	g := fig1(t)
	elapsed := func(fn Func) float64 {
		w, err := simnet.NewWorld(simnet.Config{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		const msize = 128 << 10
		if err := w.Run(func(c mpi.Comm) error {
			return fn(c, NewShared(msize), msize)
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	full := elapsed(Simple)
	narrow := elapsed(Windowed(1))
	if narrow >= full {
		t.Errorf("window=1 (%.4g) should beat full fan-out (%.4g) on a congested cluster",
			narrow, full)
	}
}
