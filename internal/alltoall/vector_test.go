package alltoall

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// vCount gives the deterministic byte count from src to dst: uneven,
// including zeros.
func vCount(src, dst, n int) int {
	return ((src*7 + dst*13) % 5) * 37 // 0, 37, 74, 111 or 148 bytes
}

// vByte gives byte i of the message src -> dst.
func vByte(src, dst, i int) byte { return byte(src*41 + dst*17 + i*3) }

// buildV constructs this rank's buffers for the vCount pattern.
func buildV(rank, n int) *ContigV {
	sendCounts := make([]int, n)
	recvCounts := make([]int, n)
	for p := 0; p < n; p++ {
		sendCounts[p] = vCount(rank, p, n)
		recvCounts[p] = vCount(p, rank, n)
	}
	b := NewContigV(sendCounts, recvCounts)
	for p := 0; p < n; p++ {
		blk := b.SendBlockV(p)
		for i := range blk {
			blk[i] = vByte(rank, p, i)
		}
	}
	return b
}

func checkV(b *ContigV, rank, n int) error {
	for p := 0; p < n; p++ {
		blk := b.RecvBlockV(p)
		if len(blk) != vCount(p, rank, n) {
			return fmt.Errorf("rank %d: block from %d has %d bytes", rank, p, len(blk))
		}
		for i := range blk {
			if blk[i] != vByte(p, rank, i) {
				return fmt.Errorf("rank %d: byte %d from %d: got %d want %d",
					rank, i, p, blk[i], vByte(p, rank, i))
			}
		}
	}
	return nil
}

func runVOnMem(t *testing.T, name string, fn VFunc, n int) {
	t.Helper()
	var mu sync.Mutex
	bufs := make(map[int]*ContigV)
	err := mem.Run(n, func(c mpi.Comm) error {
		b := buildV(c.Rank(), n)
		mu.Lock()
		bufs[c.Rank()] = b
		mu.Unlock()
		return fn(c, b)
	})
	if err != nil {
		t.Fatalf("%s n=%d: %v", name, n, err)
	}
	for r := 0; r < n; r++ {
		if err := checkV(bufs[r], r, n); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVectorBaselines(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 8} {
		runVOnMem(t, "simplev", SimpleV, n)
		runVOnMem(t, "ringv", RingV, n)
	}
	for _, n := range []int{2, 4, 8} {
		runVOnMem(t, "pairwisev", PairwiseV, n)
	}
}

func TestPairwiseVRejectsNonPowerOfTwo(t *testing.T) {
	err := mem.Run(3, func(c mpi.Comm) error {
		return PairwiseV(c, buildV(c.Rank(), 3))
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestScheduledVOnFig1(t *testing.T) {
	g := fig1(t)
	for _, mode := range []SyncMode{PairwiseSync, BarrierSync, NoSync} {
		sc := buildScheduled(t, g, mode)
		runVOnMem(t, "scheduledv/"+mode.String(), sc.FnV(), 6)
	}
}

func TestScheduledVOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(3),
			Machines: 3 + rng.Intn(8),
			Rand:     rng,
		})
		sc := buildScheduled(t, g, PairwiseSync)
		runVOnMem(t, "scheduledv", sc.FnV(), g.NumMachines())
	}
}

func TestScheduledVOnSimnet(t *testing.T) {
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	w, err := simnet.NewWorld(simnet.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	bufs := make(map[int]*ContigV)
	err = w.Run(func(c mpi.Comm) error {
		b := buildV(c.Rank(), 6)
		mu.Lock()
		bufs[c.Rank()] = b
		mu.Unlock()
		return sc.FnV()(c, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		if err := checkV(bufs[r], r, 6); err != nil {
			t.Error(err)
		}
	}
	if w.Elapsed() <= 0 {
		t.Error("no time elapsed")
	}
}

func TestSelfCountMismatch(t *testing.T) {
	// Both ranks use a self-recv count that disagrees with the self-send
	// count, so both fail before posting anything (a one-sided failure
	// would leave the other rank blocked: the in-process transport has no
	// failure propagation, unlike the simulator's deadlock detection).
	err := mem.Run(2, func(c mpi.Comm) error {
		self := c.Rank()
		recvCounts := []int{4, 4}
		recvCounts[self] = 8 // self send is 4
		return SimpleV(c, NewContigV([]int{4, 4}, recvCounts))
	})
	if err == nil {
		t.Fatal("want self-count mismatch error")
	}
}

func TestContigVLayout(t *testing.T) {
	b := NewContigV([]int{3, 0, 5}, []int{2, 4, 0})
	if len(b.Send) != 8 || len(b.Recv) != 6 {
		t.Fatalf("buffer sizes %d/%d", len(b.Send), len(b.Recv))
	}
	if len(b.SendBlockV(0)) != 3 || len(b.SendBlockV(1)) != 0 || len(b.SendBlockV(2)) != 5 {
		t.Error("send blocks wrong")
	}
	if len(b.RecvBlockV(1)) != 4 || len(b.RecvBlockV(2)) != 0 {
		t.Error("recv blocks wrong")
	}
	b.SendBlockV(2)[0] = 9
	if b.Send[3] != 9 {
		t.Error("send displacement wrong")
	}
}
