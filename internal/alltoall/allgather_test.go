package alltoall

import (
	"fmt"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// agByte is the contribution pattern: block content depends only on the
// owner.
func agByte(owner, i int) byte { return byte(owner*59 + i*11 + 1) }

// runAllgatherOnMem executes an allgather and verifies every collected
// block.
func runAllgatherOnMem(t *testing.T, name string, fn Func, n, msize int) {
	t.Helper()
	var mu sync.Mutex
	bufs := make(map[int]*Contig)
	err := mem.Run(n, func(c mpi.Comm) error {
		b := NewContig(n, msize)
		blk := b.SendBlock(c.Rank())
		for i := range blk {
			blk[i] = agByte(c.Rank(), i)
		}
		mu.Lock()
		bufs[c.Rank()] = b
		mu.Unlock()
		return fn(c, b, msize)
	})
	if err != nil {
		t.Fatalf("%s n=%d: %v", name, n, err)
	}
	for r := 0; r < n; r++ {
		for owner := 0; owner < n; owner++ {
			blk := bufs[r].RecvBlock(owner)
			for i := range blk {
				if blk[i] != agByte(owner, i) {
					t.Fatalf("%s: rank %d block of %d byte %d = %d, want %d",
						name, r, owner, i, blk[i], agByte(owner, i))
				}
			}
		}
	}
}

func TestAllgatherRingCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 9} {
		runAllgatherOnMem(t, fmt.Sprintf("ring-%d", n), AllgatherRing, n, 257)
	}
}

func TestAllgatherScheduledCorrect(t *testing.T) {
	g := fig1(t)
	for _, mode := range []SyncMode{PairwiseSync, BarrierSync, NoSync} {
		sc := buildScheduled(t, g, mode)
		runAllgatherOnMem(t, "scheduled/"+mode.String(), sc.AllgatherFn(), 6, 512)
	}
}

func TestAllgatherScheduledMatchesAlltoallTime(t *testing.T) {
	// Same phases, same sizes: the scheduled allgather must take exactly the
	// scheduled alltoall's virtual time.
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	elapsed := func(fn Func) float64 {
		w, err := simnet.NewWorld(simnet.Config{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		const msize = 64 << 10
		if err := w.Run(func(c mpi.Comm) error {
			return fn(c, NewShared(msize), msize)
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	a2a := elapsed(sc.Fn())
	ag := elapsed(sc.AllgatherFn())
	if a2a != ag {
		t.Errorf("allgather %.6g s != alltoall %.6g s despite identical phases", ag, a2a)
	}
	// Allgather has multicast structure the AAPC schedule cannot exploit
	// (a block crossing a trunk once can serve every machine behind it), so
	// the ring baseline legitimately beats the AAPC-phased variant here —
	// but it can never beat allgather's own bottleneck bound: the 3 remote
	// blocks that must cross the s0-s1 trunk in each direction.
	ring := elapsed(AllgatherRing)
	allgatherBound := 3.0 * (64 << 10) / simnet.DefaultLinkBandwidth
	if ring < allgatherBound {
		t.Errorf("ring allgather %.6g beat the allgather bound %.6g", ring, allgatherBound)
	}
	if ring >= a2a {
		t.Errorf("ring allgather (%.6g) should exploit multicast reuse and beat the AAPC-phased variant (%.6g)",
			ring, a2a)
	}
}

func TestAllgatherWorldMismatch(t *testing.T) {
	g := fig1(t)
	sc := buildScheduled(t, g, PairwiseSync)
	err := mem.Run(3, func(c mpi.Comm) error {
		return sc.AllgatherFn()(c, NewContig(3, 8), 8)
	})
	if err == nil {
		t.Fatal("want world-size mismatch error")
	}
}
