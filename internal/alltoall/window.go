package alltoall

import "github.com/aapc-sched/aapcsched/internal/mpi"

// TypedBuffers is the optional Buffers extension for the zero-copy data
// path: each block is exposed as an (base, datatype) view into application
// storage instead of a materialized contiguous slice. Transports that
// implement mpi.TypedComm gather a strided send view straight into their
// wire batches and scatter receives straight into the destination layout;
// on other transports the mpi.IsendTyped/IrecvTyped fallbacks pack and
// unpack transparently.
type TypedBuffers interface {
	Buffers
	// SendView returns the layout of the block this rank sends to dst.
	SendView(dst int) ([]byte, mpi.Datatype)
	// RecvView returns the layout into which data from src is placed.
	RecvView(src int) ([]byte, mpi.Datatype)
}

// SendView exposes a Contig send block as a contiguous view.
func (b *Contig) SendView(dst int) ([]byte, mpi.Datatype) {
	return b.SendBlock(dst), mpi.Contiguous(b.Msize)
}

// RecvView exposes a Contig receive block as a contiguous view.
func (b *Contig) RecvView(src int) ([]byte, mpi.Datatype) {
	return b.RecvBlock(src), mpi.Contiguous(b.Msize)
}

// Window is the matrix-backed buffer layout: the application keeps one
// row-major Send matrix of R rows by N*W bytes (leading dimension N*W), and
// the block destined to peer p is the W-byte-wide column strip p — R rows
// spaced a full matrix row apart. An all-to-all over a Window is therefore
// a blockwise matrix transpose performed straight out of matrix storage:
// with a typed transport the strips are gathered into the wire batch block
// by block and no pack buffer ever exists.
//
// Receives land in contiguous per-peer blocks (Recv, N blocks of R*W
// bytes), so the strided-send → contiguous-recv round trip is exercised end
// to end. Window also satisfies the plain Buffers contract for non-typed
// algorithms: RecvBlock is a direct view, and SendBlock packs the strip
// into a scratch slab (the one copy the typed path removes).
type Window struct {
	Send []byte // R rows × N*W bytes, row-major
	Recv []byte // N contiguous blocks of R*W bytes
	N    int    // world size
	R    int    // rows per block
	W    int    // strip width in bytes

	scratch []byte // lazily allocated SendBlock packing slab
}

// NewWindow allocates a Window for n ranks with blocks of rows×w bytes
// (msize = rows*w).
func NewWindow(n, rows, w int) *Window {
	return &Window{
		Send: make([]byte, rows*n*w),
		Recv: make([]byte, n*rows*w),
		N:    n,
		R:    rows,
		W:    w,
	}
}

// Msize returns the block size in bytes.
func (b *Window) Msize() int { return b.R * b.W }

// SendView returns peer dst's column strip as a strided view into the Send
// matrix.
func (b *Window) SendView(dst int) ([]byte, mpi.Datatype) {
	return b.Send[dst*b.W:], mpi.Vector(b.R, b.W, b.N*b.W)
}

// RecvView returns peer src's contiguous destination block.
func (b *Window) RecvView(src int) ([]byte, mpi.Datatype) {
	m := b.Msize()
	return b.Recv[src*m : (src+1)*m], mpi.Contiguous(m)
}

// RecvBlock returns the contiguous block for src (plain Buffers contract).
func (b *Window) RecvBlock(src int) []byte {
	m := b.Msize()
	return b.Recv[src*m : (src+1)*m]
}

// SendBlock materializes peer dst's strip contiguously for non-typed
// algorithms, packing it into a per-Window scratch slab. Typed consumers
// should use SendView and never pay this copy.
func (b *Window) SendBlock(dst int) []byte {
	m := b.Msize()
	if b.scratch == nil {
		b.scratch = make([]byte, b.N*m)
	}
	block := b.scratch[dst*m : (dst+1)*m]
	base, dt := b.SendView(dst)
	dt.Pack(block, base)
	return block
}
