package alltoall

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// This file extends the algorithms to non-uniform AAPC (MPI_Alltoallv),
// where every (source, destination) pair exchanges its own message size.
// The paper treats the uniform case; the scheduled routine generalizes
// directly because its phases are contention-free regardless of message
// sizes — only the optimality argument (equal phase durations saturating the
// bottleneck) is specific to uniform sizes.

// VBuffers provides variable-size per-peer blocks for one rank. Block
// lengths carry the counts: len(SendBlockV(dst)) bytes go to dst, and
// len(RecvBlockV(src)) bytes are expected from src.
type VBuffers interface {
	// SendBlockV returns the block this rank sends to dst.
	SendBlockV(dst int) []byte
	// RecvBlockV returns the block receiving data from src.
	RecvBlockV(src int) []byte
}

// VFunc is a non-uniform all-to-all algorithm.
type VFunc func(c mpi.Comm, b VBuffers) error

// ContigV is the MPI_Alltoallv-style contiguous layout with counts and
// displacements.
type ContigV struct {
	Send, Recv             []byte
	SendCounts, RecvCounts []int
	sendDispls, recvDispls []int
}

// NewContigV allocates buffers for the given per-peer byte counts.
// sendCounts[d] is the number of bytes this rank sends to d; recvCounts[s]
// the number it expects from s.
func NewContigV(sendCounts, recvCounts []int) *ContigV {
	b := &ContigV{
		SendCounts: append([]int(nil), sendCounts...),
		RecvCounts: append([]int(nil), recvCounts...),
		sendDispls: make([]int, len(sendCounts)+1),
		recvDispls: make([]int, len(recvCounts)+1),
	}
	for i, c := range sendCounts {
		b.sendDispls[i+1] = b.sendDispls[i] + c
	}
	for i, c := range recvCounts {
		b.recvDispls[i+1] = b.recvDispls[i] + c
	}
	b.Send = make([]byte, b.sendDispls[len(sendCounts)])
	b.Recv = make([]byte, b.recvDispls[len(recvCounts)])
	return b
}

// SendBlockV returns the outgoing block for peer dst.
func (b *ContigV) SendBlockV(dst int) []byte {
	return b.Send[b.sendDispls[dst]:b.sendDispls[dst+1]]
}

// RecvBlockV returns the incoming block for peer src.
func (b *ContigV) RecvBlockV(src int) []byte {
	return b.Recv[b.recvDispls[src]:b.recvDispls[src+1]]
}

// copySelfV moves the rank's own block locally; the send and receive counts
// for self must agree.
func copySelfV(c mpi.Comm, b VBuffers) error {
	src := b.SendBlockV(c.Rank())
	dst := b.RecvBlockV(c.Rank())
	if len(src) != len(dst) {
		return fmt.Errorf("alltoall: self counts disagree: send %d, recv %d", len(src), len(dst))
	}
	copy(dst, src)
	return nil
}

// SimpleV is the LAM-style non-uniform all-to-all: post everything, wait.
func SimpleV(c mpi.Comm, b VBuffers) error {
	n, me := c.Size(), c.Rank()
	if err := copySelfV(c, b); err != nil {
		return err
	}
	reqs := make([]mpi.Request, 0, 2*(n-1))
	for p := 0; p < n; p++ {
		if p != me {
			reqs = append(reqs, c.Irecv(b.RecvBlockV(p), p, tagData))
		}
	}
	for p := 0; p < n; p++ {
		if p != me {
			reqs = append(reqs, c.Isend(b.SendBlockV(p), p, tagData))
		}
	}
	return mpi.WaitAll(reqs)
}

// RingV is the step-synchronized non-uniform all-to-all: at step j, send to
// rank+j and receive from rank-j.
func RingV(c mpi.Comm, b VBuffers) error {
	n, me := c.Size(), c.Rank()
	if err := copySelfV(c, b); err != nil {
		return err
	}
	for j := 1; j < n; j++ {
		dst := (me + j) % n
		src := (me - j + n) % n
		if err := mpi.Sendrecv(c,
			b.SendBlockV(dst), dst, tagData,
			b.RecvBlockV(src), src, tagData); err != nil {
			return fmt.Errorf("alltoall: ringv step %d: %w", j, err)
		}
	}
	return nil
}

// PairwiseV is the XOR-exchange non-uniform all-to-all for power-of-two
// worlds.
func PairwiseV(c mpi.Comm, b VBuffers) error {
	n, me := c.Size(), c.Rank()
	if n&(n-1) != 0 {
		return fmt.Errorf("alltoall: PairwiseV requires a power-of-two world, have %d", n)
	}
	if err := copySelfV(c, b); err != nil {
		return err
	}
	for j := 1; j < n; j++ {
		peer := me ^ j
		if err := mpi.Sendrecv(c,
			b.SendBlockV(peer), peer, tagData,
			b.RecvBlockV(peer), peer, tagData); err != nil {
			return fmt.Errorf("alltoall: pairwisev step %d: %w", j, err)
		}
	}
	return nil
}

// FnV returns the non-uniform variant of the compiled scheduled routine: the
// same contention-free phase order and pair-wise synchronizations, with each
// message carrying its own size. Zero-byte messages are still sent so the
// synchronization chains stay intact.
func (sc *Scheduled) FnV() VFunc {
	return func(c mpi.Comm, b VBuffers) error {
		if c.Size() != len(sc.programs) {
			return fmt.Errorf("alltoall: routine compiled for %d ranks, world has %d",
				len(sc.programs), c.Size())
		}
		prog := &sc.programs[c.Rank()]
		if err := copySelfV(c, b); err != nil {
			return err
		}
		recvReqs := make([]mpi.Request, len(prog.recvSrcs))
		for i, src := range prog.recvSrcs {
			recvReqs[i] = c.Irecv(b.RecvBlockV(src), src, tagData)
		}
		var syncSends []mpi.Request
		syncByte := []byte{1}
		phase := 0
		for i := range prog.sends {
			st := &prog.sends[i]
			if sc.mode == BarrierSync {
				for phase < st.phase {
					if err := c.Barrier(); err != nil {
						return err
					}
					phase++
				}
			}
			for _, w := range prog.waits[st.waitLo:st.waitHi] {
				if err := mpi.Recv(c, make([]byte, 1), w.peer, w.tag); err != nil {
					return fmt.Errorf("alltoall: sync wait from %d: %w", w.peer, err)
				}
			}
			if err := mpi.Send(c, b.SendBlockV(st.dst), st.dst, tagData); err != nil {
				return fmt.Errorf("alltoall: send phase %d to %d: %w", st.phase, st.dst, err)
			}
			for _, e := range prog.emits[st.emitLo:st.emitHi] {
				syncSends = append(syncSends, c.Isend(syncByte, e.peer, e.tag))
			}
		}
		if sc.mode == BarrierSync {
			for ; phase < prog.numPhases-1; phase++ {
				if err := c.Barrier(); err != nil {
					//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
					return err
				}
			}
		}
		if err := mpi.WaitAll(recvReqs); err != nil {
			//aapc:allow waitcheck on error the collective aborts; outstanding requests are abandoned to the transport shutdown path
			return err
		}
		return mpi.WaitAll(syncSends)
	}
}
