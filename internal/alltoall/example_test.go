package alltoall_test

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Example compiles a topology-customized all-to-all routine and runs it on
// the in-process transport, exchanging one tagged byte between every pair.
func Example() {
	g, err := topology.ParseString(`
switches s0 s1
machines n0 n1 n2 n3
link s0 s1
link s0 n0
link s0 n1
link s1 n2
link s1 n3
`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := schedule.Build(g)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := syncplan.Build(g, s)
	if err != nil {
		log.Fatal(err)
	}
	routine, err := alltoall.NewScheduled(s, plan, alltoall.PairwiseSync)
	if err != nil {
		log.Fatal(err)
	}

	const msize = 1
	sums := make(chan int, 4)
	err = mem.Run(4, func(c mpi.Comm) error {
		b := alltoall.NewContig(c.Size(), msize)
		for dst := 0; dst < c.Size(); dst++ {
			b.SendBlock(dst)[0] = byte(10*c.Rank() + dst)
		}
		if err := routine.Fn()(c, b, msize); err != nil {
			return err
		}
		sum := 0
		for src := 0; src < c.Size(); src++ {
			sum += int(b.RecvBlock(src)[0])
		}
		sums <- sum
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every rank r receives {10*src + r for all src}: sum = 60 + 4r.
	got := make([]bool, 4)
	for i := 0; i < 4; i++ {
		got[(<-sums-60)/4] = true
	}
	fmt.Println("all ranks verified:", got[0] && got[1] && got[2] && got[3])
	fmt.Println("synchronization messages:", routine.SyncCount())
	// Output:
	// all ranks verified: true
	// synchronization messages: 16
}
