package alltoall

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Bruck is the logarithmic store-and-forward all-to-all used by MPICH for
// small messages: ceil(log2 N) rounds, each moving about half the blocks,
// trading bandwidth (each block travels multiple hops) for latency (far
// fewer messages than N-1). Included as the small-message leg of the MPICH
// dispatcher and as a baseline extension.
func Bruck(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		copySelf(c, b)
		return nil
	}
	// Phase 1 — local rotation: tmp[i] = block destined to (me + i) mod n,
	// so tmp[0] is the self block.
	tmp := make([][]byte, n)
	for i := 0; i < n; i++ {
		src := b.SendBlock((me + i) % n)
		tmp[i] = append(make([]byte, 0, msize), src...)
	}
	// Phase 2 — log rounds. At round k (power of two), every block whose
	// index has bit k set is packed and sent to rank me+k, while the
	// matching blocks arrive from rank me-k. After all rounds tmp[i] holds
	// the block sent by rank me-i to this rank.
	sendPack := make([]byte, 0, n*msize)
	recvPack := make([]byte, 0, n*msize)
	for k := 1; k < n; k <<= 1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		sendPack = sendPack[:0]
		count := 0
		for i := 0; i < n; i++ {
			if i&k != 0 {
				sendPack = append(sendPack, tmp[i]...)
				count++
			}
		}
		recvPack = recvPack[:count*msize]
		if err := mpi.Sendrecv(c,
			sendPack, dst, tagData+k,
			recvPack, src, tagData+k); err != nil {
			return fmt.Errorf("alltoall: bruck round k=%d: %w", k, err)
		}
		off := 0
		for i := 0; i < n; i++ {
			if i&k != 0 {
				copy(tmp[i], recvPack[off:off+msize])
				off += msize
			}
		}
	}
	// Phase 3 — inverse rotation: tmp[i] now holds the block sent by rank
	// (me - i + n) mod n, so it lands in that source's result slot.
	for i := 0; i < n; i++ {
		copy(b.RecvBlock((me-i+n)%n), tmp[i])
	}
	return nil
}
