//go:build race

package alltoall

// raceEnabled reports whether the race detector is active. Under race the
// runtime deliberately drops a fraction of sync.Pool puts, so strict
// zero-allocation assertions are meaningless there.
const raceEnabled = true
