// Package alltoall implements MPI_Alltoall algorithms over the mpi
// substrate: the LAM/MPI and MPICH algorithms the paper compares against
// (Section 6), the Bruck small-message algorithm, and the paper's
// contribution — the topology-scheduled, contention-free algorithm with
// pair-wise synchronizations.
//
// All algorithms exchange one block of Msize bytes between every ordered
// pair of ranks. Block storage is abstracted by Buffers so that functional
// transports can use real contiguous MPI-style buffers while the network
// simulator can alias blocks and run 32-rank x 256 KB experiments without
// gigabytes of backing memory.
package alltoall

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Buffers provides the per-peer send and receive blocks of one rank.
type Buffers interface {
	// SendBlock returns the block this rank sends to dst.
	SendBlock(dst int) []byte
	// RecvBlock returns the block into which data from src is received.
	RecvBlock(src int) []byte
}

// Func is an all-to-all personalized communication algorithm: on return,
// RecvBlock(src) holds SendBlock-of-this-rank as prepared by rank src, for
// every src.
type Func func(c mpi.Comm, b Buffers, msize int) error

// Contig is the MPI-style contiguous buffer layout: Send and Recv each hold
// Size blocks of Msize bytes, block i belonging to peer i.
type Contig struct {
	Send  []byte
	Recv  []byte
	Msize int
}

// NewContig allocates contiguous buffers for a world of n ranks.
func NewContig(n, msize int) *Contig {
	return &Contig{
		Send:  make([]byte, n*msize),
		Recv:  make([]byte, n*msize),
		Msize: msize,
	}
}

// SendBlock returns the outgoing block for peer dst.
func (b *Contig) SendBlock(dst int) []byte {
	return b.Send[dst*b.Msize : (dst+1)*b.Msize]
}

// RecvBlock returns the incoming block for peer src.
func (b *Contig) RecvBlock(src int) []byte {
	return b.Recv[src*b.Msize : (src+1)*b.Msize]
}

// Shared aliases every block onto the same backing storage. Contents are
// meaningless; only sizes matter. It exists for simulator benchmarks, where
// timing — not data — is the output.
type Shared struct {
	send []byte
	recv []byte
}

// NewShared creates aliased buffers with blocks of msize bytes.
func NewShared(msize int) *Shared {
	return &Shared{send: make([]byte, msize), recv: make([]byte, msize)}
}

// SendBlock returns the shared outgoing block.
func (b *Shared) SendBlock(int) []byte { return b.send }

// RecvBlock returns the shared incoming block.
func (b *Shared) RecvBlock(int) []byte { return b.recv }

// Tag bases. Data messages use tagData; the scheduled algorithm's
// synchronization messages use tagSync + the sync's index in the plan.
const (
	tagData = 1
	tagSync = 1 << 20
)

// copySelf moves the rank's own block locally, straight between typed views
// when the buffers expose them (no pack staging).
func copySelf(c mpi.Comm, b Buffers) {
	if tb, ok := b.(TypedBuffers); ok {
		sb, sdt := tb.SendView(c.Rank())
		rb, rdt := tb.RecvView(c.Rank())
		mpi.CopyTyped(rb, rdt, sb, sdt)
		return
	}
	copy(b.RecvBlock(c.Rank()), b.SendBlock(c.Rank()))
}

// Simple is the original LAM/MPI algorithm: post every nonblocking receive
// and every nonblocking send — sends in the order i->0, i->1, ..., i->N-1 —
// and wait for all of them. No scheduling: the network sorts it out.
func Simple(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	reqs := make([]mpi.Request, 0, 2*(n-1))
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		reqs = append(reqs, c.Irecv(b.RecvBlock(p), p, tagData))
	}
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		reqs = append(reqs, c.Isend(b.SendBlock(p), p, tagData))
	}
	copySelf(c, b)
	return mpi.WaitAll(reqs)
}

// SimpleOffset is the MPICH algorithm for medium messages
// (256 < msize <= 32768): identical to Simple except that rank i orders its
// operations i->i+1, i->i+2, ..., i->i+N-1 (mod N), which spreads the
// instantaneous load across destinations.
func SimpleOffset(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	reqs := make([]mpi.Request, 0, 2*(n-1))
	for off := 1; off < n; off++ {
		p := (me + off) % n
		reqs = append(reqs, c.Irecv(b.RecvBlock(p), p, tagData))
	}
	for off := 1; off < n; off++ {
		p := (me + off) % n
		reqs = append(reqs, c.Isend(b.SendBlock(p), p, tagData))
	}
	copySelf(c, b)
	return mpi.WaitAll(reqs)
}

// Pairwise is the MPICH large-message algorithm for power-of-two worlds:
// N-1 steps, exchanging with peer i XOR j at step j.
func Pairwise(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	if n&(n-1) != 0 {
		return fmt.Errorf("alltoall: Pairwise requires a power-of-two world, have %d", n)
	}
	copySelf(c, b)
	for j := 1; j < n; j++ {
		peer := me ^ j
		if err := mpi.Sendrecv(c,
			b.SendBlock(peer), peer, tagData,
			b.RecvBlock(peer), peer, tagData); err != nil {
			return fmt.Errorf("alltoall: pairwise step %d: %w", j, err)
		}
	}
	return nil
}

// RingExchange is the MPICH large-message algorithm for non-power-of-two
// worlds: N-1 steps; at step j rank i sends to i+j and receives from i-j.
func RingExchange(c mpi.Comm, b Buffers, msize int) error {
	n, me := c.Size(), c.Rank()
	copySelf(c, b)
	for j := 1; j < n; j++ {
		dst := (me + j) % n
		src := (me - j + n) % n
		if err := mpi.Sendrecv(c,
			b.SendBlock(dst), dst, tagData,
			b.RecvBlock(src), src, tagData); err != nil {
			return fmt.Errorf("alltoall: ring step %d: %w", j, err)
		}
	}
	return nil
}

// MPICHThresholds are the message-size cut-offs of the improved MPICH
// dispatcher the paper describes.
const (
	MPICHSmallMax  = 256
	MPICHMediumMax = 32768
)

// MPICH is the adaptive dispatcher of the improved MPICH implementation:
// Bruck for small messages (msize <= 256), SimpleOffset for medium ones
// (<= 32768), and for large messages Pairwise when the world is a power of
// two, RingExchange otherwise.
func MPICH(c mpi.Comm, b Buffers, msize int) error {
	switch n := c.Size(); {
	case msize <= MPICHSmallMax:
		return Bruck(c, b, msize)
	case msize <= MPICHMediumMax:
		return SimpleOffset(c, b, msize)
	case n&(n-1) == 0:
		return Pairwise(c, b, msize)
	default:
		return RingExchange(c, b, msize)
	}
}
