package syncplan

import (
	"math/rand"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

func fig1(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.ParseString(`
switches s0 s1 s2 s3
machines n0 n1 n2 n3 n4 n5
link s0 n0
link s0 n1
link s0 s2
link s2 n2
link s1 s0
link s1 s3
link s1 n5
link s3 n3
link s3 n4
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// conflicts enumerates every ordered cross-phase pair of messages that share
// a directed link (the pairs the plan must order).
func conflicts(g *topology.Graph, s *schedule.Schedule) []Sync {
	idx := g.NewEdgeIndex()
	phaseOf := s.PhaseOf()
	var all []schedule.Message
	for _, p := range s.Phases {
		all = append(all, p...)
	}
	paths := make(map[schedule.Message]map[int]bool)
	for _, m := range all {
		es := make(map[int]bool)
		for _, e := range g.PathIDs(idx, g.MachineID(m.Src), g.MachineID(m.Dst)) {
			es[e] = true
		}
		paths[m] = es
	}
	var out []Sync
	for _, a := range all {
		for _, b := range all {
			if phaseOf[a] >= phaseOf[b] {
				continue
			}
			shared := false
			for e := range paths[a] {
				if paths[b][e] {
					shared = true
					break
				}
			}
			if shared {
				out = append(out, Sync{After: a, Before: b})
			}
		}
	}
	return out
}

// covers reports whether the plan's sync DAG implies After-before-Before for
// the given pair, via transitive closure over the plan edges.
func covers(plan *Plan, pair Sync) bool {
	adj := plan.ByAfter()
	seen := map[schedule.Message]bool{pair.After: true}
	stack := []schedule.Message{pair.After}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range adj[m] {
			if nxt == pair.Before {
				return true
			}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return false
}

func checkPlan(t *testing.T, g *topology.Graph, s *schedule.Schedule) *Plan {
	t.Helper()
	plan, err := Build(g, s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	confl := conflicts(g, s)
	if plan.ConflictPairs != len(confl) {
		t.Errorf("ConflictPairs = %d, want %d", plan.ConflictPairs, len(confl))
	}
	// Soundness: every conflicting pair ordered (possibly transitively).
	for _, c := range confl {
		if !covers(plan, c) {
			t.Errorf("conflict %v -> %v not covered by plan", c.After, c.Before)
		}
	}
	// Every plan edge must be a real conflict (no spurious syncs).
	conflSet := make(map[Sync]bool, len(confl))
	for _, c := range confl {
		conflSet[c] = true
	}
	for _, sy := range plan.Syncs {
		if !conflSet[sy] {
			t.Errorf("plan sync %v -> %v is not a conflict", sy.After, sy.Before)
		}
	}
	// Minimality: removing any single sync must break coverage of itself
	// (transitive reduction keeps only edges not implied by others).
	for drop := range plan.Syncs {
		reduced := &Plan{Syncs: append([]Sync(nil), plan.Syncs...)}
		reduced.Syncs = append(reduced.Syncs[:drop], reduced.Syncs[drop+1:]...)
		if covers(reduced, plan.Syncs[drop]) {
			t.Errorf("sync %v -> %v is redundant (implied without itself)",
				plan.Syncs[drop].After, plan.Syncs[drop].Before)
		}
	}
	return plan
}

func TestPlanFig1(t *testing.T) {
	g := fig1(t)
	s, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	plan := checkPlan(t, g, s)
	if plan.NumSyncs() == 0 {
		t.Error("Fig. 1 schedule should require synchronizations")
	}
	if plan.NumSyncs() >= plan.ConflictPairs {
		t.Errorf("redundancy elimination removed nothing: %d syncs for %d conflicts",
			plan.NumSyncs(), plan.ConflictPairs)
	}
}

func TestPlanStar(t *testing.T) {
	g := topology.New()
	sw := g.MustAddSwitch("sw")
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		m := g.MustAddMachine(n)
		g.MustConnect(sw, m)
	}
	g.MustValidate()
	s, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	plan := checkPlan(t, g, s)
	// On a star each machine link is used once per phase in each direction;
	// conflicts chain along phases per machine.
	if plan.NumSyncs() == 0 {
		t.Error("star schedule should require synchronizations")
	}
}

func TestPlanRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(4),
			Machines: 3 + rng.Intn(7),
			Rand:     rng,
		})
		s, err := schedule.Build(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkPlan(t, g, s)
		if t.Failed() {
			t.Fatalf("trial %d topology:\n%s", trial, g.Format())
		}
	}
}

func TestPlanGreedyScheduleToo(t *testing.T) {
	// The plan builder must work for any contention-free schedule, not just
	// the paper's construction.
	g := fig1(t)
	s := schedule.BuildGreedy(g)
	checkPlan(t, g, s)
}

func TestBuildRejectsContention(t *testing.T) {
	g := fig1(t)
	bad := &schedule.Schedule{
		NumRanks: 6,
		Phases: []schedule.Phase{
			{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, // both use n0's uplink
		},
	}
	if _, err := Build(g, bad); err == nil {
		t.Error("want error for contending schedule")
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	g := fig1(t)
	bad := &schedule.Schedule{
		NumRanks: 6,
		Phases: []schedule.Phase{
			{{Src: 0, Dst: 1}},
			{{Src: 0, Dst: 1}},
		},
	}
	if _, err := Build(g, bad); err == nil {
		t.Error("want error for duplicated message")
	}
}

func TestByAfterByBefore(t *testing.T) {
	g := fig1(t)
	s, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := 0, 0
	for _, v := range plan.ByAfter() {
		na += len(v)
	}
	for _, v := range plan.ByBefore() {
		nb += len(v)
	}
	if na != plan.NumSyncs() || nb != plan.NumSyncs() {
		t.Errorf("grouping lost syncs: %d/%d, want %d", na, nb, plan.NumSyncs())
	}
}

// TestPaperRedundancyExample reproduces the Section 5 example: m1 conflicts
// with m2 and m3, m2 conflicts with m3 — the m1->m3 synchronization must be
// removed as redundant.
func TestPaperRedundancyExample(t *testing.T) {
	// Chain topology: two machines under one switch; messages a->b in three
	// phases all crossing the same links do not exist in AAPC, so craft a
	// schedule over a 2-machine star with three phases is impossible.
	// Instead use a 3-machine star and three messages into machine 0:
	// 1->0 (phase 0), 2->0 (phase 1), 1->0 impossible again — so use the
	// link (sw, n0) shared by 1->0, 2->0 and the reverse direction is not
	// shared. Three messages sharing one link in three phases:
	g := topology.New()
	sw := g.MustAddSwitch("sw")
	for _, n := range []string{"a", "b", "c", "d"} {
		g.MustConnect(sw, g.MustAddMachine(n))
	}
	g.MustValidate()
	s := &schedule.Schedule{
		NumRanks: 4,
		Phases: []schedule.Phase{
			{{Src: 1, Dst: 0}}, // m1
			{{Src: 2, Dst: 0}}, // m2, conflicts with m1 on (sw, a)
			{{Src: 3, Dst: 0}}, // m3, conflicts with m1 and m2 on (sw, a)
		},
	}
	plan, err := Build(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ConflictPairs != 3 {
		t.Errorf("ConflictPairs = %d, want 3", plan.ConflictPairs)
	}
	want := []Sync{
		{After: schedule.Message{Src: 1, Dst: 0}, Before: schedule.Message{Src: 2, Dst: 0}},
		{After: schedule.Message{Src: 2, Dst: 0}, Before: schedule.Message{Src: 3, Dst: 0}},
	}
	if len(plan.Syncs) != len(want) {
		t.Fatalf("Syncs = %v, want %v", plan.Syncs, want)
	}
	for i := range want {
		if plan.Syncs[i] != want[i] {
			t.Errorf("sync %d = %v, want %v", i, plan.Syncs[i], want[i])
		}
	}
}

func TestBuildCapacityAwareAllowsSamePhase(t *testing.T) {
	// Two messages sharing a link in one phase: strict Build must reject,
	// capacity-aware Build must accept and order only cross-phase pairs.
	g := fig1(t)
	s := &schedule.Schedule{
		NumRanks: 6,
		Phases: []schedule.Phase{
			{{Src: 0, Dst: 4}, {Src: 0, Dst: 3}}, // impossible strictly: share n0's uplink
			{{Src: 1, Dst: 4}},
		},
	}
	if _, err := Build(g, s); err == nil {
		t.Fatal("strict Build should reject same-phase sharing")
	}
	plan, err := BuildCapacityAware(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Only the cross-phase conflicts (0->4 vs 1->4 and 0->3 vs 1->4 via
	// shared links into t1's subtree) may appear; no same-phase pair.
	for _, sy := range plan.Syncs {
		if sy.After.Src == 0 && sy.Before.Src == 0 {
			t.Errorf("same-phase pair synchronized: %v", sy)
		}
	}
	if plan.NumSyncs() == 0 {
		t.Error("cross-phase conflicts should need syncs")
	}
}
