// Package syncplan computes the pair-wise synchronizations that preserve a
// contention-free AAPC schedule at run time (Section 5 of Faraj & Yuan,
// IPPS 2005).
//
// Separating phases with barriers preserves the schedule but pays a full
// synchronization per phase. The paper instead synchronizes only where it
// matters: when message a->b in phase p and message c->d in a later phase q
// would contend on some directed link, node a sends a small synchronization
// message to node c after completing a->b, and c delays c->d until that
// message arrives. Synchronizations implied by others (transitively) are
// redundant and removed, minimizing the number of extra messages.
package syncplan

import (
	"fmt"
	"sort"

	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Sync orders two data messages of the schedule: After (in an earlier phase)
// must complete before Before (in a later phase) may start. At run time the
// source of After sends a small control message to the source of Before.
type Sync struct {
	// After is the message that must finish first.
	After schedule.Message
	// Before is the message that must wait.
	Before schedule.Message
}

// Plan is the synchronization plan for one schedule: the minimal set of
// pair-wise orderings that prevents any two link-sharing messages from
// different phases from overlapping.
type Plan struct {
	// Syncs lists the required synchronizations, sorted by (After, Before).
	Syncs []Sync
	// ConflictPairs is the number of cross-phase conflicting message pairs
	// before redundancy elimination (the dependence-graph edge count the
	// naive all-pairs construction would synchronize).
	ConflictPairs int
}

// NumSyncs returns the number of synchronization messages the plan inserts.
func (p *Plan) NumSyncs() int { return len(p.Syncs) }

// Build computes the synchronization plan for a schedule on a topology.
//
// Construction: for every directed link, the messages crossing it are
// ordered by phase (contention freedom guarantees at most one per phase per
// link); every ordered pair of them is a conflict. The conflict relation is
// then reduced: a synchronization a->c is redundant when the dependence
// a ... c is already implied by a chain of other synchronizations. The
// result is the unique transitive reduction of the conflict DAG (phases give
// a topological order, so the DAG is acyclic and the reduction unique).
func Build(g *topology.Graph, s *schedule.Schedule) (*Plan, error) {
	return build(g, s, false)
}

// BuildCapacityAware computes the synchronization plan for a
// capacity-respecting schedule on a heterogeneous cluster (see
// schedule.VerifyCapacity): messages of the same phase may legitimately
// share a fast link and need no mutual ordering, so only cross-phase
// conflicts are synchronized.
func BuildCapacityAware(g *topology.Graph, s *schedule.Schedule) (*Plan, error) {
	return build(g, s, true)
}

func build(g *topology.Graph, s *schedule.Schedule, allowSamePhase bool) (*Plan, error) {
	idx := g.NewEdgeIndex()

	// msgs enumerates scheduled messages with a dense index in phase order.
	type node struct {
		msg   schedule.Message
		phase int
	}
	var nodes []node
	id := make(map[schedule.Message]int)
	for pi, p := range s.Phases {
		for _, m := range p {
			if _, dup := id[m]; dup {
				return nil, fmt.Errorf("syncplan: message %v scheduled twice", m)
			}
			id[m] = len(nodes)
			nodes = append(nodes, node{msg: m, phase: pi})
		}
	}

	// usersOf[e] lists message indices crossing directed edge e, in phase
	// order (nodes are appended in phase order already).
	usersOf := make([][]int, idx.Len())
	for i, nd := range nodes {
		for _, e := range g.PathIDs(idx, g.MachineID(nd.msg.Src), g.MachineID(nd.msg.Dst)) {
			usersOf[e] = append(usersOf[e], i)
		}
	}

	// Dependence graph: adjacency via successor sets. An edge u -> v for
	// every pair of same-link users with phase(u) < phase(v).
	succ := make([]map[int]bool, len(nodes))
	for i := range succ {
		succ[i] = make(map[int]bool)
	}
	conflictPairs := 0
	for e := range usersOf {
		users := usersOf[e]
		for a := 0; a < len(users); a++ {
			for b := a + 1; b < len(users); b++ {
				u, v := users[a], users[b]
				if nodes[u].phase == nodes[v].phase {
					if allowSamePhase {
						continue
					}
					return nil, fmt.Errorf(
						"syncplan: schedule not contention-free: %v and %v share a link in phase %d",
						nodes[u].msg, nodes[v].msg, nodes[u].phase)
				}
				if !succ[u][v] {
					succ[u][v] = true
					conflictPairs++
				}
			}
		}
	}

	// Transitive reduction. Process candidates in decreasing phase gap so
	// that reachability via shorter dependencies is available; since the DAG
	// is leveled by phase, a DFS that avoids the candidate edge itself
	// decides redundancy. For efficiency, compute reachability per node with
	// memoized bitsets over the (phase-ordered) node indices.
	reach := make([][]uint64, len(nodes))
	words := (len(nodes) + 63) / 64
	var computeReach func(u int)
	computeReach = func(u int) {
		if reach[u] != nil {
			return
		}
		r := make([]uint64, words)
		// Mark direct successors, then fold in their reachability.
		// Keep only non-redundant edges: we compute on the reduced graph as
		// it is being built, which is valid because we reduce edges in
		// topological order from the last node backward.
		for v := range succ[u] {
			r[v/64] |= 1 << (v % 64)
			computeReach(v)
			for w := range r {
				r[w] |= reach[v][w]
			}
		}
		reach[u] = r
	}

	// Reduce: for each node u (backward), drop successors v reachable
	// through another successor.
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return nodes[order[a]].phase > nodes[order[b]].phase
	})
	plan := &Plan{ConflictPairs: conflictPairs}
	for _, u := range order {
		// Successors of u sorted by phase ascending; a successor v is
		// redundant if some other kept successor w (with earlier phase than
		// v) reaches v.
		vs := make([]int, 0, len(succ[u]))
		for v := range succ[u] {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(a, b int) bool {
			return nodes[vs[a]].phase < nodes[vs[b]].phase
		})
		kept := make([]int, 0, len(vs))
		for _, v := range vs {
			redundant := false
			for _, w := range kept {
				computeReach(w)
				if reach[w][v/64]&(1<<(v%64)) != 0 {
					redundant = true
					break
				}
			}
			if !redundant {
				kept = append(kept, v)
			}
		}
		// Replace successor set with the kept edges only, so reachability
		// computed later (for earlier nodes) uses the reduced graph —
		// reachability is unchanged by removing transitive edges.
		succ[u] = make(map[int]bool, len(kept))
		for _, v := range kept {
			succ[u][v] = true
			plan.Syncs = append(plan.Syncs, Sync{After: nodes[u].msg, Before: nodes[v].msg})
		}
	}

	sort.Slice(plan.Syncs, func(a, b int) bool {
		x, y := plan.Syncs[a], plan.Syncs[b]
		if x.After != y.After {
			if x.After.Src != y.After.Src {
				return x.After.Src < y.After.Src
			}
			return x.After.Dst < y.After.Dst
		}
		if x.Before.Src != y.Before.Src {
			return x.Before.Src < y.Before.Src
		}
		return x.Before.Dst < y.Before.Dst
	})
	return plan, nil
}

// ByAfter groups the plan's synchronizations by their After message: the
// control messages a sender must emit when a given data message completes.
func (p *Plan) ByAfter() map[schedule.Message][]schedule.Message {
	out := make(map[schedule.Message][]schedule.Message)
	for _, s := range p.Syncs {
		out[s.After] = append(out[s.After], s.Before)
	}
	return out
}

// ByBefore groups the plan's synchronizations by their Before message: the
// control messages a sender must collect before starting a data message.
func (p *Plan) ByBefore() map[schedule.Message][]schedule.Message {
	out := make(map[schedule.Message][]schedule.Message)
	for _, s := range p.Syncs {
		out[s.Before] = append(out[s.Before], s.After)
	}
	return out
}
