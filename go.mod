module github.com/aapc-sched/aapcsched

go 1.22
