// Package aapcsched reproduces "Message Scheduling for All-to-All
// Personalized Communication on Ethernet Switched Clusters" (Faraj & Yuan,
// IPPS 2005) as a Go library: the contention-free AAPC scheduling algorithm,
// the automatic MPI_Alltoall routine generator with pair-wise
// synchronizations, the LAM/MPI and MPICH baseline algorithms, and a
// discrete-event network simulator that stands in for the paper's physical
// Ethernet cluster.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The implementation lives under internal/;
// the runnable entry points are cmd/aapcgen (the routine generator),
// cmd/aapcbench (the evaluation) and cmd/topoinfo (topology analysis), with
// worked examples under examples/.
package aapcsched
