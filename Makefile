GO ?= go

.PHONY: check vet lint lint-json lint-audit build build-obsv-off test race alloc-gates bench bench-sim bench-transport bench-sched bench-trace microbench fuzz

# check is the one-command gate: static analysis (stock vet plus the
# project analyzers in cmd/aapcvet), full build (with and without the
# observability layer), the test suite under the race detector, and the
# allocation-regression gates (which need a race-free build: the race
# runtime drops sync.Pool puts).
check: vet lint build build-obsv-off race alloc-gates

# alloc-gates are the steady-state budgets for the hot paths: zero allocs
# per Scheduled.Fn run, amortized sub-0.1 allocs per instrumented operation,
# and zero userspace payload copies on the tcp data plane with receives
# pre-posted (the zero-copy gate).
alloc-gates:
	$(GO) test -run 'TestScheduledFnNoSteadyStateAllocs' -count=1 ./internal/alltoall/
	$(GO) test -run 'TestInstrumentedOpAllocsAmortized' -count=1 ./internal/obsv/
	$(GO) test -run 'TestTCPZeroCopySteadyState' -count=1 ./internal/mpi/tcp/

vet:
	$(GO) vet ./...

# bin/aapcvet is a real file target so lint invocations skip the rebuild
# when neither the driver nor the analyzers changed; go's own build cache
# makes the recipe cheap, but skipping it entirely keeps warm lint runs
# at vet-only cost.
AAPCVET_SRCS := $(wildcard cmd/aapcvet/*.go internal/analysis/*.go internal/analysis/analysistest/*.go) go.mod
bin/aapcvet: $(AAPCVET_SRCS)
	$(GO) build -o $@ ./cmd/aapcvet

# lint runs the project-specific analyzers (poolsafe, determinism,
# waitcheck, noalloc, copycount, lockorder, spscsafe, shadow, copylocks,
# loopclosure) over both build configurations via the go vet -vettool
# protocol. Suppress a deliberate violation with an
# //aapc:allow <analyzer> <reason> comment on (or one line above) the
# flagged line; `make lint-audit` flags suppressions that have gone stale.
lint: bin/aapcvet
	$(GO) vet -vettool=$(abspath bin/aapcvet) ./...
	$(GO) vet -vettool=$(abspath bin/aapcvet) -tags obsv_off ./...

# lint-json emits one NDJSON object per diagnostic (file, line, col,
# analyzer, message, suppressed) for editor and CI integration.
lint-json: bin/aapcvet
	$(GO) vet -vettool=$(abspath bin/aapcvet) -json ./...
	$(GO) vet -vettool=$(abspath bin/aapcvet) -json -tags obsv_off ./...

# lint-audit additionally reports stale //aapc:allow comments whose
# analyzer no longer flags anything at that site.
lint-audit: bin/aapcvet
	$(GO) vet -vettool=$(abspath bin/aapcvet) -unusedallow ./...
	$(GO) vet -vettool=$(abspath bin/aapcvet) -unusedallow -tags obsv_off ./...

build:
	$(GO) build ./...

# The obsv_off tag compiles the observability layer down to no-ops; the tree
# must build in that configuration too.
build-obsv-off:
	$(GO) build -tags obsv_off ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the machine-readable evaluation reports: the Fig. 1
# example cluster and the 32-node star topology (b), written as
# BENCH_fig1.json and BENCH_b.json.
bench:
	$(GO) run ./cmd/aapcbench -topo fig1 -json .
	$(GO) run ./cmd/aapcbench -topo b -json .

# bench-sim measures raw simulator-engine throughput (events/s, allocs) on
# jittered 32/128-rank and windowed 512-rank AAPC runs; committed reference
# numbers live in BENCH_sim.json.
bench-sim:
	$(GO) test -bench=BenchmarkSimAAPC -benchmem -benchtime=1x -run=^$$ ./internal/simnet/

# bench-transport measures the transport data plane: scheduled all-to-all
# over the mem, shm and tcp transports across a world-size x message-size
# grid, with copies/op tracking the zero-copy path; committed reference
# numbers live in BENCH_transport.json.
bench-transport:
	$(GO) test -bench 'BenchmarkMemAlltoall|BenchmarkShmAlltoall|BenchmarkTCPAlltoall' -run=^$$ -benchtime 30x ./internal/alltoall/
	$(GO) test -bench 'BenchmarkBuildGreedy/N=64|BenchmarkBuildGreedy/N=256' -run=^$$ -benchtime 1x ./internal/schedule/

# microbench runs the go-test benchmarks (paper tables/figures, transport
# and instrumentation costs).
microbench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-sched measures the schedule daemon's compile paths: from-scratch
# parallel greedy compiles vs incremental reschedule after a one-node
# delta, at N=128 and N=512; committed reference numbers live in
# BENCH_sched.json.
bench-sched:
	$(GO) test -bench 'BenchmarkBuildGreedyParallel|BenchmarkReschedule' -run=^$$ -benchtime 1x ./internal/schedule/

# bench-trace measures the causal-tracing pipeline: per-operation overhead
# of the instrumented wrapper, collector JSONL ingest and merge throughput
# (spans/s), full-report analysis cost, and the multi-host clock-offset
# estimator; committed reference numbers live in BENCH_trace.json.
bench-trace:
	$(GO) test -bench=BenchmarkInstrumentedOpCost -benchmem -run=^$$ ./internal/obsv/
	$(GO) test -bench 'BenchmarkIngestJSONL|BenchmarkMerge|BenchmarkAnalyze|BenchmarkEstimateOffsets' -benchmem -run=^$$ ./internal/obsv/collect/

# Short fuzz passes over every DSL parser and the daemon's request
# grammar (longer runs: go test -fuzz=... ).
fuzz:
	$(GO) test -fuzz=FuzzParseTopology -fuzztime=30s ./internal/topology/
	$(GO) test -fuzz=FuzzParsePlan -fuzztime=30s ./internal/faults/
	$(GO) test -fuzz=FuzzTopologyDelta -fuzztime=30s ./internal/topology/
	$(GO) test -fuzz=FuzzScheduleRequest -fuzztime=30s ./internal/sched/
