GO ?= go

.PHONY: check vet build build-obsv-off test race bench bench-sim microbench fuzz

# check is the one-command gate: static analysis, full build (with and
# without the observability layer), and the test suite under the race
# detector.
check: vet build build-obsv-off race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The obsv_off tag compiles the observability layer down to no-ops; the tree
# must build in that configuration too.
build-obsv-off:
	$(GO) build -tags obsv_off ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the machine-readable evaluation reports: the Fig. 1
# example cluster and the 32-node star topology (b), written as
# BENCH_fig1.json and BENCH_b.json.
bench:
	$(GO) run ./cmd/aapcbench -topo fig1 -json .
	$(GO) run ./cmd/aapcbench -topo b -json .

# bench-sim measures raw simulator-engine throughput (events/s, allocs) on
# jittered 32/128-rank and windowed 512-rank AAPC runs; committed reference
# numbers live in BENCH_sim.json.
bench-sim:
	$(GO) test -bench=BenchmarkSimAAPC -benchmem -benchtime=1x -run=^$$ ./internal/simnet/

# microbench runs the go-test benchmarks (paper tables/figures, transport
# and instrumentation costs).
microbench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Short fuzz passes over every DSL parser (longer runs: go test -fuzz=... ).
fuzz:
	$(GO) test -fuzz=FuzzParseTopology -fuzztime=30s ./internal/topology/
	$(GO) test -fuzz=FuzzParsePlan -fuzztime=30s ./internal/faults/
