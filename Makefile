GO ?= go

.PHONY: check vet build test race bench fuzz

# check is the one-command gate: static analysis, full build, and the test
# suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Short fuzz passes over every DSL parser (longer runs: go test -fuzz=... ).
fuzz:
	$(GO) test -fuzz=FuzzParseTopology -fuzztime=30s ./internal/topology/
	$(GO) test -fuzz=FuzzParsePlan -fuzztime=30s ./internal/faults/
