// Non-uniform exchange (MPI_Alltoallv) — the repository's extension of the
// paper's scheduling to variable message sizes. The scenario is a particle
// migration step from a simulation: each rank owns a spatial cell and sends
// a different number of particles to every other cell; the exchange runs
// through the topology-scheduled contention-free phases.
//
//	go run ./examples/vector
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

const ranks = 6

// particle is an 8-byte payload: owner cell history packed with an id.
type particle struct {
	id   uint32
	from uint32
}

// migrating returns how many particles rank src sends to rank dst this step:
// deliberately lopsided, with zeros.
func migrating(src, dst int) int {
	if src == dst {
		return 0
	}
	return (src * 3) % 5 * ((dst + 2) % 3) // 0..12 particles
}

func main() {
	g := harness.Fig1()
	routine, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for s := 0; s < ranks; s++ {
		for d := 0; d < ranks; d++ {
			total += migrating(s, d)
		}
	}
	fmt.Printf("migrating %d particles between %d cells through the scheduled phases\n",
		total, ranks)

	err = mem.Run(ranks, func(c mpi.Comm) error {
		me := c.Rank()
		sendCounts := make([]int, ranks)
		recvCounts := make([]int, ranks)
		for p := 0; p < ranks; p++ {
			sendCounts[p] = migrating(me, p) * 8
			recvCounts[p] = migrating(p, me) * 8
		}
		b := alltoall.NewContigV(sendCounts, recvCounts)
		for p := 0; p < ranks; p++ {
			blk := b.SendBlockV(p)
			for i := 0; i < len(blk)/8; i++ {
				binary.LittleEndian.PutUint32(blk[i*8:], uint32(me*1000+i))
				binary.LittleEndian.PutUint32(blk[i*8+4:], uint32(me))
			}
		}
		if err := routine.FnV()(c, b); err != nil {
			return err
		}
		// Verify every arriving particle states its true origin.
		arrived := 0
		for p := 0; p < ranks; p++ {
			blk := b.RecvBlockV(p)
			for i := 0; i < len(blk)/8; i++ {
				pt := particle{
					id:   binary.LittleEndian.Uint32(blk[i*8:]),
					from: binary.LittleEndian.Uint32(blk[i*8+4:]),
				}
				if int(pt.from) != p || int(pt.id) != p*1000+i {
					return fmt.Errorf("rank %d: corrupted particle %+v from %d", me, pt, p)
				}
				arrived++
			}
		}
		want := 0
		for p := 0; p < ranks; p++ {
			want += migrating(p, me)
		}
		if arrived != want {
			return fmt.Errorf("rank %d: %d particles arrived, want %d", me, arrived, want)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("every particle arrived at its destination cell intact: OK")
}
