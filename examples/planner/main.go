// Cluster planner — a what-if study the library makes possible: given a
// fixed stock of switches and machines, compare candidate wirings by their
// AAPC capability before buying a single cable. For each candidate the
// planner reports the analytic peak aggregate throughput and the simulated
// performance of the generated routine at a representative message size.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// candidate wires 16 machines onto 4 switches in a particular shape.
type candidate struct {
	name  string
	build func() *topology.Graph
}

func chain() *topology.Graph {
	g := topology.New()
	var s [4]int
	for i := range s {
		s[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(s[i-1], s[i])
		}
	}
	attach(g, s)
	return g.MustValidate()
}

func starOfSwitches() *topology.Graph {
	g := topology.New()
	var s [4]int
	for i := range s {
		s[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
	}
	g.MustConnect(s[0], s[1])
	g.MustConnect(s[0], s[2])
	g.MustConnect(s[0], s[3])
	attach(g, s)
	return g.MustValidate()
}

func lopsided() *topology.Graph {
	// All machines concentrated on two leaf switches at the ends of a chain
	// — the worst case for the middle links.
	g := topology.New()
	var s [4]int
	for i := range s {
		s[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(s[i-1], s[i])
		}
	}
	for i := 0; i < 16; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		if i < 8 {
			g.MustConnect(s[0], m)
		} else {
			g.MustConnect(s[3], m)
		}
	}
	return g.MustValidate()
}

// attach spreads 16 machines evenly, 4 per switch.
func attach(g *topology.Graph, s [4]int) {
	for i := 0; i < 16; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(s[i/4], m)
	}
}

func main() {
	const msize = 128 << 10
	candidates := []candidate{
		{"chain, 4 per switch", chain},
		{"star,  4 per switch", starOfSwitches},
		{"chain, 8+8 at ends", lopsided},
	}
	fmt.Printf("planning 16 machines / 4 switches, msize %s, 100 Mbps links\n\n",
		harness.FormatMsize(msize))
	fmt.Printf("%-22s %6s %10s %14s %14s\n",
		"wiring", "load", "peak Mbps", "generated", "LAM baseline")
	for _, cand := range candidates {
		g := cand.build()
		ours, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
		if err != nil {
			log.Fatal(err)
		}
		net := simnet.Config{Graph: g}
		oursSecs, err := harness.Measure(net, ours.Fn(), msize)
		if err != nil {
			log.Fatal(err)
		}
		lamSecs, err := harness.Measure(net, alltoall.Simple, msize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6d %10.1f %12.1fms %12.1fms\n",
			cand.name, g.AAPCLoad(),
			g.PeakAggregateThroughput(simnet.DefaultLinkBandwidth)*8/1e6,
			oursSecs*1e3, lamSecs*1e3)
	}
	fmt.Println("\nlower load and higher peak are better; the generated routine tracks the peak.")
}
