// Generated-routine example: fig1_routine.go in this directory was emitted
// by the automatic routine generator —
//
//	go run ./cmd/aapcgen -topo fig1 -go examples/generated/fig1_routine.go \
//	    -package main -func newFig1Alltoall
//
// — exactly as the paper's generator emitted C code for LAM/MPI. This main
// runs the embedded routine on the in-process transport and verifies the
// exchange. A test in internal/gen regenerates the file and fails if the
// checked-in copy drifts from the generator output.
//
//	go run ./examples/generated
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

func main() {
	routine, err := newFig1Alltoall()
	if err != nil {
		log.Fatal(err)
	}
	n := routine.NumRanks()
	fmt.Printf("embedded routine: %d ranks, %d synchronization messages\n",
		n, routine.SyncCount())

	const msize = 1024
	err = mem.Run(n, func(c mpi.Comm) error {
		b := alltoall.NewContig(n, msize)
		for dst := 0; dst < n; dst++ {
			blk := b.SendBlock(dst)
			for i := range blk {
				blk[i] = byte(c.Rank() ^ dst ^ i)
			}
		}
		if err := routine.Fn()(c, b, msize); err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			want := make([]byte, msize)
			for i := range want {
				want[i] = byte(src ^ c.Rank() ^ i)
			}
			if !bytes.Equal(b.RecvBlock(src), want) {
				return fmt.Errorf("rank %d: bad block from %d", c.Rank(), src)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all-to-all through the generated routine verified: OK")
}
