// Data redistribution — converting a distributed array from block to cyclic
// layout, another of the paper's motivating AAPC workloads. With N ranks and
// E elements per rank, element g of the global array moves from the block
// owner g/E to the cyclic owner g mod N; grouping by (source, destination)
// pairs yields a uniform all-to-all when N divides E.
//
//	go run ./examples/redistribute
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

const (
	ranks   = 6
	perRank = 48 // elements per rank; divisible by ranks
	chunk   = perRank / ranks
)

// value is the deterministic content of global element g.
func value(g int) uint64 { return uint64(g)*2654435761 + 12345 }

func redistribute(c mpi.Comm, fn alltoall.Func) error {
	me := c.Rank()
	// Block layout: this rank owns global elements me*perRank ...
	// (me+1)*perRank-1. The elements destined to cyclic owner p are those
	// with g mod ranks == p: exactly chunk of them, in increasing g.
	msize := chunk * 8
	b := alltoall.NewContig(ranks, msize)
	counts := make([]int, ranks)
	for i := 0; i < perRank; i++ {
		g := me*perRank + i
		p := g % ranks
		binary.LittleEndian.PutUint64(b.SendBlock(p)[counts[p]*8:], value(g))
		counts[p]++
	}
	for p, n := range counts {
		if n != chunk {
			return fmt.Errorf("rank %d: %d elements for %d, want %d", me, n, p, chunk)
		}
	}
	if err := fn(c, b, msize); err != nil {
		return err
	}
	// Cyclic layout: this rank owns elements with g mod ranks == me, i.e.
	// g = me, me+ranks, me+2*ranks, ... The j-th element from source p is
	// the j-th global element in p's block with residue me:
	// g = p*perRank + j*ranks + ((me - p*perRank) mod ranks).
	for p := 0; p < ranks; p++ {
		rb := b.RecvBlock(p)
		first := p * perRank
		off := ((me-first)%ranks + ranks) % ranks
		for j := 0; j < chunk; j++ {
			g := first + off + j*ranks
			got := binary.LittleEndian.Uint64(rb[j*8:])
			if want := value(g); got != want {
				return fmt.Errorf("rank %d: element %d from %d: got %d want %d",
					me, g, p, got, want)
			}
		}
	}
	return nil
}

func main() {
	g := harness.Fig1()
	ours, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redistributing %d elements from block to cyclic layout over %d ranks\n",
		ranks*perRank, ranks)
	for _, entry := range []struct {
		name string
		fn   alltoall.Func
	}{
		{"MPICH adaptive", alltoall.MPICH},
		{"generated routine", ours.Fn()},
	} {
		if err := mem.Run(ranks, func(c mpi.Comm) error {
			return redistribute(c, entry.fn)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s cyclic layout verified: OK\n", entry.name)
	}
}
