// Matrix transpose — the workload the paper's introduction motivates AAPC
// with. A square matrix is distributed by row blocks across the ranks; the
// transpose is one MPI_Alltoall (each rank sends to every other rank the
// sub-block that belongs to it after transposition) plus a local transpose
// of each received sub-block.
//
// The example runs on the in-process transport with real data and verifies
// the result element by element, once with the LAM baseline and once with
// the generated routine.
//
//	go run ./examples/transpose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

const (
	ranks = 6  // one per machine of the Fig. 1 cluster
	dim   = 24 // matrix is dim x dim, dim % ranks == 0
	block = dim / ranks
)

// element gives the deterministic value of matrix cell (r, c).
func element(r, c int) uint32 { return uint32(r*1000 + c) }

// transpose distributes the matrix, runs the all-to-all, and verifies that
// this rank ends up with the correct row block of the transposed matrix.
func transpose(c mpi.Comm, fn alltoall.Func) error {
	me := c.Rank()
	// Row block owned by this rank: rows me*block .. (me+1)*block-1.
	// The send block for rank p holds my rows restricted to columns
	// p*block .. (p+1)*block-1 — the sub-block that lands in p's rows after
	// transposition.
	msize := block * block * 4
	b := alltoall.NewContig(ranks, msize)
	for p := 0; p < ranks; p++ {
		sb := b.SendBlock(p)
		i := 0
		for r := me * block; r < (me+1)*block; r++ {
			for col := p * block; col < (p+1)*block; col++ {
				binary.LittleEndian.PutUint32(sb[i:], element(r, col))
				i += 4
			}
		}
	}
	if err := fn(c, b, msize); err != nil {
		return err
	}
	// After the exchange, RecvBlock(p) holds rank p's rows restricted to my
	// columns. Transposing each sub-block locally yields my rows of the
	// transposed matrix: row r of Mᵀ is column r of M.
	for p := 0; p < ranks; p++ {
		rb := b.RecvBlock(p)
		for i := 0; i < block; i++ { // row index within p's block: original row p*block+i
			for j := 0; j < block; j++ { // column index within my block: original col me*block+j
				got := binary.LittleEndian.Uint32(rb[(i*block+j)*4:])
				// Cell (p*block+i, me*block+j) of M becomes cell
				// (me*block+j, p*block+i) of Mᵀ, which this rank owns.
				if want := element(p*block+i, me*block+j); got != want {
					return fmt.Errorf("rank %d: Mᵀ[%d][%d] = %d, want %d",
						me, me*block+j, p*block+i, got, want)
				}
			}
		}
	}
	return nil
}

func main() {
	g := harness.Fig1()
	ours, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		log.Fatal(err)
	}
	for _, entry := range []struct {
		name string
		fn   alltoall.Func
	}{
		{"LAM simple", alltoall.Simple},
		{"generated routine", ours.Fn()},
	} {
		var once sync.Once
		err := mem.Run(ranks, func(c mpi.Comm) error {
			once.Do(func() {
				fmt.Printf("transposing %dx%d matrix across %d ranks with %s...\n",
					dim, dim, ranks, entry.name)
			})
			return transpose(c, entry.fn)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  transpose verified element-by-element: OK")
	}
}
