// Quickstart: describe a cluster, generate its customized MPI_Alltoall
// routine, and compare it against the LAM and MPICH baselines on the
// simulated network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

func main() {
	// 1. Describe the cluster. This is the paper's Fig. 1 example: six
	// machines behind four 100 Mbps Ethernet switches.
	g, err := topology.ParseString(`
switches s0 s1 s2 s3
machines n0 n1 n2 n3 n4 n5
link s0 n0
link s0 n1
link s0 s2
link s2 n2
link s1 s0
link s1 s3
link s1 n5
link s3 n3
link s3 n4
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster:", g)
	fmt.Printf("AAPC load: %d (=> at least %d contention-free phases)\n",
		g.AAPCLoad(), g.AAPCLoad())

	// 2. Generate the schedule: root identification, global scheduling and
	// message assignment (Section 4 of the paper).
	s, err := schedule.Build(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Verify(g, s, true); err != nil {
		log.Fatal(err) // contention-free and load-optimal, or bust
	}
	fmt.Printf("schedule: %d messages in %d phases\n", s.NumMessages(), len(s.Phases))
	fmt.Print(s)

	// 3. Compute the pair-wise synchronizations that keep the phases
	// separated at run time (Section 5).
	plan, err := syncplan.Build(g, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronizations: %d (down from %d conflicting pairs)\n\n",
		plan.NumSyncs(), plan.ConflictPairs)

	// 4. Compile to a runnable routine and race it against the baselines on
	// the simulated cluster.
	ours, err := alltoall.NewScheduled(s, plan, alltoall.PairwiseSync)
	if err != nil {
		log.Fatal(err)
	}
	net := simnet.Config{Graph: g} // defaults: 100 Mbps, 0.5 ms startup
	const msize = 128 << 10
	for _, entry := range []struct {
		name string
		fn   alltoall.Func
	}{
		{"LAM/MPI simple", alltoall.Simple},
		{"MPICH adaptive", alltoall.MPICH},
		{"generated routine", ours.Fn()},
	} {
		secs, err := harness.Measure(net, entry.fn, msize)
		if err != nil {
			log.Fatal(err)
		}
		mbps := float64(g.NumMachines()) * float64(g.NumMachines()-1) * msize * 8 / secs / 1e6
		fmt.Printf("%-18s %8.1f ms   %7.1f Mbps aggregate\n", entry.name, secs*1e3, mbps)
	}
	fmt.Printf("%-18s %8s      %7.1f Mbps (theoretical peak)\n", "", "",
		g.PeakAggregateThroughput(simnet.DefaultLinkBandwidth)*8/1e6)
}
