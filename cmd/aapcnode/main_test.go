package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int{"64K": 65536, "1M": 1 << 20, "100": 100}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "0K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

func TestLocalWorldEndToEnd(t *testing.T) {
	for _, alg := range []string{"ours", "lam", "mpich"} {
		if err := run(0, "", "", true, "fig1", "", alg, "4K"); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, "", "", false, "fig1", "", "ours", "4K"); err == nil {
		t.Error("want error without a mode")
	}
	if err := run(0, "", "", true, "zzz", "", "ours", "4K"); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run(0, "", "", true, "fig1", "", "zzz", "4K"); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := run(0, "", "", true, "fig1", "", "ours", "bogus"); err == nil {
		t.Error("want error for bad msize")
	}
	if err := run(0, "", "127.0.0.1:1", false, "fig1", "", "ours", "4K"); err == nil {
		t.Error("want error joining dead coordinator")
	}
}
