package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/obsv/collect"
	"github.com/aapc-sched/aapcsched/internal/trace"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int{"64K": 65536, "1M": 1 << 20, "100": 100}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "0K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

// opts builds a -local configuration with the defaults the flag set would
// apply.
func opts(mutate func(*options)) *options {
	o := &options{
		local:      true,
		preset:     "fig1",
		alg:        "ours",
		msize:      "4K",
		rendezvous: 30 * time.Second,
	}
	if mutate != nil {
		mutate(o)
	}
	return o
}

func TestLocalWorldEndToEnd(t *testing.T) {
	for _, alg := range []string{"ours", "lam", "mpich"} {
		if err := run(opts(func(o *options) { o.alg = alg })); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestLocalWorldWithDeadline(t *testing.T) {
	if err := run(opts(func(o *options) { o.deadline = 30 * time.Second })); err != nil {
		t.Errorf("with deadline: %v", err)
	}
}

func TestLocalWorldWithFaultPlan(t *testing.T) {
	// A transient stall and a message delay must not affect correctness.
	o := opts(func(o *options) {
		o.faultsSpec = "seed 7; stall 1 2ms count 2; delay 0 2 1ms count 3"
		o.deadline = 30 * time.Second
	})
	if err := run(o); err != nil {
		t.Errorf("with fault plan: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts(func(o *options) { o.local = false })); err == nil {
		t.Error("want error without a mode")
	}
	if err := run(opts(func(o *options) { o.preset = "zzz" })); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run(opts(func(o *options) { o.alg = "zzz" })); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := run(opts(func(o *options) { o.msize = "bogus" })); err == nil {
		t.Error("want error for bad msize")
	}
	if err := run(opts(func(o *options) { o.faultsSpec = "frob 1 2" })); err == nil {
		t.Error("want error for bad fault plan")
	}
	err := run(opts(func(o *options) {
		o.local = false
		o.join = "127.0.0.1:1"
		o.rendezvous = 200 * time.Millisecond
	}))
	if err == nil {
		t.Error("want error joining dead coordinator")
	} else if !strings.Contains(err.Error(), "dial") && !strings.Contains(err.Error(), "connect") {
		t.Logf("join error (accepted): %v", err)
	}
}

// TestReportTransportStats exercises the -transport-stats report against a
// real 2-rank distributed world: the transport line, the zero-copy
// borrowed-vs-copied split, and — when the ranks link through shared
// memory — the shm-vs-tcp byte split.
func TestReportTransportStats(t *testing.T) {
	const n = 2
	coord, err := tcp.StartCoordinator("127.0.0.1:0", n, tcp.WithRendezvousTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var bufs [n]bytes.Buffer
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, closeFn, err := tcp.JoinRetry(coord.Addr(), 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer closeFn()
			me := c.Rank()
			rr := c.Irecv(make([]byte, 2048), 1-me, 0)
			sr := c.Isend(make([]byte, 2048), 1-me, 0)
			if err := mpi.WaitAll([]mpi.Request{rr, sr}); err != nil {
				errs <- err
				return
			}
			if err := c.Barrier(); err != nil {
				errs <- err
				return
			}
			mu.Lock()
			reportTransportStats(c, &bufs[me])
			mu.Unlock()
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	shmLinked := shm.MapAvailable() && os.Getenv("AAPC_SHM") != "0"
	for r := 0; r < n; r++ {
		out := bufs[r].String()
		for _, want := range []string{"transport: frames=", "zero-copy: borrowed=", "borrow_ratio="} {
			if !strings.Contains(out, want) {
				t.Errorf("rank %d report missing %q:\n%s", r, want, out)
			}
		}
		if shmLinked && !strings.Contains(out, "links: shm=1 ") {
			t.Errorf("rank %d report missing shm link split:\n%s", r, out)
		}
	}

	// A comm without transport counters reports nothing.
	var quiet bytes.Buffer
	reportTransportStats(mem.NewWorld(1)[0], &quiet)
	if quiet.Len() != 0 {
		t.Errorf("mem comm produced a transport report: %q", quiet.String())
	}
}

// TestLocalWorldObserved runs the instrumented local world with a metrics
// endpoint and a JSONL trace, then checks the trace renders to a complete
// timeline: one data flow per ordered rank pair, correct world size.
func TestLocalWorldObserved(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	o := opts(func(o *options) {
		o.metrics = "127.0.0.1:0"
		o.tracePath = path
	})
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tl, meta, err := trace.LoadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := harness.Preset(o.preset)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumMachines()
	if meta.Ranks != n || meta.Transport != "tcp" {
		t.Errorf("trace meta %+v, want %d tcp ranks", meta, n)
	}
	st := tl.Stats()
	if st.DataFlows != n*(n-1) {
		t.Errorf("trace has %d data flows, want %d", st.DataFlows, n*(n-1))
	}
	if st.ControlFlows == 0 {
		t.Error("trace has no sync control flows")
	}
	if rows := strings.Count(tl.Gantt(40), "rank"); rows != n {
		t.Errorf("Gantt has %d rows, want %d", rows, n)
	}
}

// TestLocalWorldPushesTrace: -push delivers the run's JSONL trace to a
// collector, which can then produce a causal report — the wiring a
// distributed run uses to report itself to aapcd/aapctrace.
func TestLocalWorldPushesTrace(t *testing.T) {
	store := collect.NewStore()
	store.SetCommonClock(true) // -local: every rank in this process
	srv := httptest.NewServer(collect.Handler(store, nil))
	defer srv.Close()

	o := opts(func(o *options) {
		o.tracePush = srv.URL + "/v1/trace/ingest"
		o.pprof = true // rides along: profile rates + debug server on :0
	})
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	g, err := harness.Preset(o.preset)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumMachines()
	if store.NumSpans() == 0 {
		t.Fatal("collector received no spans")
	}
	rep := store.Analyze(g)
	if rep.Ranks != n {
		t.Errorf("report ranks = %d, want %d", rep.Ranks, n)
	}
	if rep.Linked == 0 {
		t.Error("pushed trace has no causal links")
	}
	if len(rep.Critical) == 0 {
		t.Error("pushed trace yields no critical path")
	}

	// A bad collector URL must surface as a run error.
	srv.Close()
	if err := run(opts(func(o *options) { o.tracePush = srv.URL + "/v1/trace/ingest" })); err == nil {
		t.Error("want error pushing to dead collector")
	}
}
