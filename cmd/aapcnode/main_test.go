package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int{"64K": 65536, "1M": 1 << 20, "100": 100}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "0K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

// opts builds a -local configuration with the defaults the flag set would
// apply.
func opts(mutate func(*options)) *options {
	o := &options{
		local:      true,
		preset:     "fig1",
		alg:        "ours",
		msize:      "4K",
		rendezvous: 30 * time.Second,
	}
	if mutate != nil {
		mutate(o)
	}
	return o
}

func TestLocalWorldEndToEnd(t *testing.T) {
	for _, alg := range []string{"ours", "lam", "mpich"} {
		if err := run(opts(func(o *options) { o.alg = alg })); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestLocalWorldWithDeadline(t *testing.T) {
	if err := run(opts(func(o *options) { o.deadline = 30 * time.Second })); err != nil {
		t.Errorf("with deadline: %v", err)
	}
}

func TestLocalWorldWithFaultPlan(t *testing.T) {
	// A transient stall and a message delay must not affect correctness.
	o := opts(func(o *options) {
		o.faultsSpec = "seed 7; stall 1 2ms count 2; delay 0 2 1ms count 3"
		o.deadline = 30 * time.Second
	})
	if err := run(o); err != nil {
		t.Errorf("with fault plan: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts(func(o *options) { o.local = false })); err == nil {
		t.Error("want error without a mode")
	}
	if err := run(opts(func(o *options) { o.preset = "zzz" })); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run(opts(func(o *options) { o.alg = "zzz" })); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := run(opts(func(o *options) { o.msize = "bogus" })); err == nil {
		t.Error("want error for bad msize")
	}
	if err := run(opts(func(o *options) { o.faultsSpec = "frob 1 2" })); err == nil {
		t.Error("want error for bad fault plan")
	}
	err := run(opts(func(o *options) {
		o.local = false
		o.join = "127.0.0.1:1"
		o.rendezvous = 200 * time.Millisecond
	}))
	if err == nil {
		t.Error("want error joining dead coordinator")
	} else if !strings.Contains(err.Error(), "dial") && !strings.Contains(err.Error(), "connect") {
		t.Logf("join error (accepted): %v", err)
	}
}
