// Command aapcnode runs one rank of a distributed all-to-all over real TCP —
// the deployable configuration of this library, playing the role of an MPI
// process launcher plus MPI_Alltoall.
//
// Start a coordinator for the world, then one process per rank:
//
//	aapcnode -serve 6 -addr 127.0.0.1:7777 &
//	for i in $(seq 6); do aapcnode -join 127.0.0.1:7777 -topo fig1 -alg ours -msize 64K & done
//
// Every rank fills its send blocks with a verifiable pattern, runs the
// chosen algorithm (the generated routine is compiled from the topology by
// every process independently and deterministically), checks every received
// byte, and reports its wall-clock time.
//
// For a one-command demonstration, -local runs the coordinator and all
// ranks inside one process, still over real sockets:
//
//	aapcnode -local -topo fig1 -alg ours -msize 64K
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// options collects the command-line configuration.
type options struct {
	serve      int
	addr, join string
	local      bool
	preset     string
	file       string
	alg        string
	msize      string
	deadline   time.Duration
	rendezvous time.Duration
	faultsSpec string
	metrics    string
	tracePath  string
	tracePush  string
	pprof      bool
	xportStats bool
}

func main() {
	var o options
	flag.IntVar(&o.serve, "serve", 0, "run a coordinator for this many ranks and exit")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:0", "coordinator listen address (with -serve)")
	flag.StringVar(&o.join, "join", "", "coordinator address to join as one rank")
	flag.BoolVar(&o.local, "local", false, "run coordinator and every rank in this process")
	flag.StringVar(&o.preset, "topo", "fig1", "topology preset (a, b, c, bg, fig1)")
	flag.StringVar(&o.file, "file", "", "topology DSL file (overrides -topo)")
	flag.StringVar(&o.alg, "alg", "ours", "algorithm: ours, lam or mpich")
	flag.StringVar(&o.msize, "msize", "64K", "block size per pair (suffix K or M)")
	flag.DurationVar(&o.deadline, "deadline", 0,
		"per-operation deadline; 0 waits forever (a dead peer still fails fast with a rank error)")
	flag.DurationVar(&o.rendezvous, "rendezvous", 30*time.Second,
		"rendezvous window: coordinator waits this long for all ranks, joiners retry dialing within it")
	flag.StringVar(&o.faultsSpec, "faults", "",
		"fault plan: a file path, or inline DSL with ';' as line separator (see internal/faults)")
	flag.StringVar(&o.metrics, "metrics", "",
		"serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address for the run's duration (e.g. 127.0.0.1:9100)")
	flag.StringVar(&o.tracePath, "trace", "",
		"write the run's obsv event trace as JSONL to this file (render with aapcbench -render)")
	flag.StringVar(&o.tracePush, "push", "",
		"POST the run's obsv event trace to this collector ingest URL (e.g. http://host:8642/v1/trace/ingest)")
	flag.BoolVar(&o.pprof, "pprof", false,
		"enable block/mutex profiling and serve /debug/pprof for the run (implies -metrics 127.0.0.1:0 when -metrics is unset)")
	flag.BoolVar(&o.xportStats, "transport-stats", false,
		"report per-rank transport counters after the run (frames, bytes, coalescing, borrowed-vs-copied sends, shm-vs-tcp byte split)")
	flag.Parse()
	if err := run(&o); err != nil {
		if re, ok := mpi.AsRankError(err); ok {
			fmt.Fprintf(os.Stderr, "aapcnode: peer rank %d failed: %v\n", re.Rank, err)
		} else {
			fmt.Fprintln(os.Stderr, "aapcnode:", err)
		}
		os.Exit(1)
	}
}

// loadFaults resolves the -faults flag: a readable file wins, otherwise the
// string is inline DSL with ';' accepted as a line separator. Returns nil
// when no plan is requested.
func loadFaults(spec string) (*faults.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if data, err := os.ReadFile(spec); err == nil {
		return faults.ParsePlanString(string(data))
	}
	return faults.ParsePlanString(strings.ReplaceAll(spec, ";", "\n"))
}

// wrapFaults decorates the comm with the fault plan, if any. Per-process
// injectors sharing a plan stay globally deterministic: each directed pair
// stream is consulted only by its source rank, each rank stream only by the
// rank itself. Injected faults are counted on rec when non-nil.
func wrapFaults(c mpi.Comm, plan *faults.Plan, deadline time.Duration, rec *obsv.Recorder) mpi.Comm {
	if plan == nil {
		return c
	}
	inj := faults.New(plan)
	inj.SetOpTimeout(deadline)
	inj.SetRecorder(rec)
	return inj.Wrap(c)
}

// instrument builds this rank's recorder and wraps the comm for
// observability: faults innermost (so injected chaos hits the raw
// transport), the obsv wrapper outermost (so alltoall.Scheduled finds the
// phase marker through the decorator chain).
func instrument(c mpi.Comm, plan *faults.Plan, deadline time.Duration) (mpi.Comm, *obsv.Recorder) {
	rec := obsv.NewRecorder(c.Rank())
	return obsv.Instrument(wrapFaults(c, plan, deadline, rec), rec), rec
}

// reportTransportStats prints the rank's data-plane counters when the comm
// exposes them (the distributed tcp transport does). The coalescing factor
// is frames per vectored write: 1.0 means every frame paid its own syscall,
// higher means the write coalescer batched frames behind a busy socket.
// The zero-copy line splits sends into borrowed (caller's buffer rode the
// wire directly) vs copied (staged through the pool), and — for distributed
// worlds with co-located ranks — payload bytes into shared-memory vs socket
// links.
func reportTransportStats(c mpi.Comm, out interface{ Write([]byte) (int, error) }) {
	sr, ok := c.(interface{ TransportStats() tcp.Stats })
	if !ok {
		return
	}
	s := sr.TransportStats()
	coalesce := 0.0
	if s.Writevs > 0 {
		coalesce = float64(s.FramesSent+s.AcksSent) / float64(s.Writevs)
	}
	fmt.Fprintf(out, "rank %2d: transport: frames=%d bytes=%d writevs=%d coalescing=%.2f dup_discards=%d\n",
		c.Rank(), s.FramesSent, s.BytesSent, s.Writevs, coalesce, s.DupDiscards)
	borrowRatio := 0.0
	if t := s.BorrowedSends + s.CopiedSends; t > 0 {
		borrowRatio = float64(s.BorrowedSends) / float64(t)
	}
	fmt.Fprintf(out, "rank %2d: zero-copy: borrowed=%d copied=%d borrow_ratio=%.2f payload_copies=%d zero_copy_recvs=%d\n",
		c.Rank(), s.BorrowedSends, s.CopiedSends, borrowRatio, s.PayloadCopies, s.ZeroCopyRecvs)
	if s.ShmLinks > 0 {
		fmt.Fprintf(out, "rank %2d: links: shm=%d shm_bytes=%d tcp_bytes=%d\n",
			c.Rank(), s.ShmLinks, s.ShmBytesSent, s.TCPBytesSent)
	}
}

// writeTrace writes the merged event trace of the recorders as JSONL.
func writeTrace(path string, meta obsv.Meta, recs ...*obsv.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obsv.WriteRecorders(f, meta, recs...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitTrace delivers the run's trace wherever the flags point: a JSONL file
// (-trace), a collector's ingest endpoint (-push), or both. The collector
// merges pushes from every rank, so a distributed run can report itself
// piecewise to one aapcd/aapctrace instance.
func emitTrace(o *options, meta obsv.Meta, recs ...*obsv.Recorder) error {
	if o.tracePath != "" {
		if err := writeTrace(o.tracePath, meta, recs...); err != nil {
			return err
		}
	}
	if o.tracePush == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := obsv.WriteRecorders(&buf, meta, recs...); err != nil {
		return err
	}
	resp, err := http.Post(o.tracePush, "application/x-ndjson", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace push to %s: %s: %s", o.tracePush, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

func run(o *options) error {
	msize, err := parseSize(o.msize)
	if err != nil {
		return err
	}
	plan, err := loadFaults(o.faultsSpec)
	if err != nil {
		return err
	}
	if o.pprof {
		// Block and mutex profiles are empty unless the runtime hooks are
		// on; the debug server (ServeMetrics) exposes them on /debug/pprof.
		runtime.SetBlockProfileRate(1)
		runtime.SetMutexProfileFraction(5)
		if o.metrics == "" {
			o.metrics = "127.0.0.1:0"
		}
	}
	switch {
	case o.serve > 0:
		coord, err := tcp.StartCoordinator(o.addr, o.serve, tcp.WithRendezvousTimeout(o.rendezvous))
		if err != nil {
			return err
		}
		fmt.Printf("coordinator for %d ranks on %s\n", o.serve, coord.Addr())
		return coord.Wait()
	case o.join != "":
		fn, _, err := buildAlgorithm(o.preset, o.file, o.alg, o.deadline)
		if err != nil {
			return err
		}
		c, closeFn, err := tcp.JoinRetry(o.join, o.rendezvous)
		if err != nil {
			return err
		}
		defer closeFn()
		ic, rec := instrument(c, plan, o.deadline)
		if o.metrics != "" {
			addr, closeSrv, err := obsv.ServeMetrics(o.metrics, obsv.NewRegistry(rec))
			if err != nil {
				return err
			}
			if addr != "" {
				fmt.Printf("rank %d metrics on http://%s/metrics\n", c.Rank(), addr)
			}
			defer closeSrv()
		}
		if err := runRank(ic, fn, msize, os.Stdout); err != nil {
			return err
		}
		if o.xportStats {
			reportTransportStats(c, os.Stdout)
		}
		if o.tracePath != "" || o.tracePush != "" {
			meta := obsv.Meta{Ranks: c.Size(), Transport: "tcp", Name: o.alg, Msize: msize}
			return emitTrace(o, meta, rec)
		}
		return nil
	case o.local:
		fn, g, err := buildAlgorithm(o.preset, o.file, o.alg, o.deadline)
		if err != nil {
			return err
		}
		n := g.NumMachines()
		coord, err := tcp.StartCoordinator("127.0.0.1:0", n, tcp.WithRendezvousTimeout(o.rendezvous))
		if err != nil {
			return err
		}
		fmt.Printf("local world of %d ranks via %s, algorithm %s, msize %s\n",
			n, coord.Addr(), o.alg, harness.FormatMsize(msize))
		reg := obsv.NewRegistry()
		if o.metrics != "" {
			addr, closeSrv, err := obsv.ServeMetrics(o.metrics, reg)
			if err != nil {
				return err
			}
			if addr != "" {
				fmt.Printf("metrics on http://%s/metrics\n", addr)
			}
			defer closeSrv()
		}
		var wg sync.WaitGroup
		errs := make(chan error, n)
		var mu sync.Mutex // serialize per-rank report lines
		recs := make([]*obsv.Recorder, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, closeFn, err := tcp.JoinRetry(coord.Addr(), o.rendezvous)
				if err != nil {
					errs <- err
					return
				}
				defer closeFn()
				ic, rec := instrument(c, plan, o.deadline)
				mu.Lock()
				recs[c.Rank()] = rec
				mu.Unlock()
				reg.Add(rec)
				err = runRank(ic, fn, msize, &lockedWriter{mu: &mu})
				if err == nil && o.xportStats {
					reportTransportStats(c, &lockedWriter{mu: &mu})
				}
				errs <- err
			}()
		}
		wg.Wait()
		var first error
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		if err := coord.Wait(); err != nil && first == nil {
			first = err
		}
		if (o.tracePath != "" || o.tracePush != "") && first == nil {
			present := recs[:0:0]
			for _, r := range recs {
				if r != nil {
					present = append(present, r)
				}
			}
			meta := obsv.Meta{Ranks: n, Transport: "tcp", Name: o.alg, Msize: msize}
			first = emitTrace(o, meta, present...)
		}
		return first
	default:
		return fmt.Errorf("need one of -serve, -join or -local (see -help)")
	}
}

// lockedWriter serializes whole lines from concurrent ranks.
type lockedWriter struct{ mu *sync.Mutex }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return os.Stdout.Write(p)
}

// buildAlgorithm resolves the topology and algorithm choice. A non-zero
// deadline bounds every blocking step of the scheduled routine.
func buildAlgorithm(preset, file, alg string, deadline time.Duration) (alltoall.Func, *topology.Graph, error) {
	var g *topology.Graph
	var err error
	if file != "" {
		f, ferr := os.Open(file)
		if ferr != nil {
			return nil, nil, ferr
		}
		g, err = topology.Parse(f)
		f.Close()
	} else {
		g, err = harness.Preset(preset)
	}
	if err != nil {
		return nil, nil, err
	}
	switch alg {
	case "ours":
		sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
		if err != nil {
			return nil, nil, err
		}
		return sc.FnTimeout(deadline), g, nil
	case "lam":
		return alltoall.Simple, g, nil
	case "mpich":
		return alltoall.MPICH, g, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q (want ours, lam or mpich)", alg)
	}
}

// runRank executes one verified all-to-all on the communicator.
func runRank(c mpi.Comm, fn alltoall.Func, msize int, out interface{ Write([]byte) (int, error) }) error {
	n, me := c.Size(), c.Rank()
	b := alltoall.NewContig(n, msize)
	for dst := 0; dst < n; dst++ {
		blk := b.SendBlock(dst)
		for i := range blk {
			blk[i] = byte(me*31 + dst*7 + i)
		}
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	start := c.Now()
	if err := fn(c, b, msize); err != nil {
		return fmt.Errorf("rank %d: %w", me, err)
	}
	elapsed := c.Now() - start
	for src := 0; src < n; src++ {
		blk := b.RecvBlock(src)
		for i := range blk {
			if blk[i] != byte(src*31+me*7+i) {
				return fmt.Errorf("rank %d: corrupt byte %d from %d", me, i, src)
			}
		}
	}
	fmt.Fprintf(out, "rank %2d: all-to-all verified in %8.3f ms\n", me, elapsed*1e3)
	// Closing barrier: no rank may tear its sockets down while peers are
	// still exchanging (an early close would poison their matchers).
	return c.Barrier()
}

// parseSize parses "64K"/"1M"/plain byte counts.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad message size %q", s)
	}
	return v * mult, nil
}
