package main

import "os"

// writeTestTopo writes a tiny 2-switch cluster description for driver tests.
func writeTestTopo(path string) error {
	return os.WriteFile(path, []byte(`
switches s0 s1
machines a b c d
link s0 s1
link s0 a
link s0 b
link s1 c
link s1 d
`), 0o644)
}
