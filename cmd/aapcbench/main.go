// Command aapcbench reproduces the paper's evaluation (Section 6) on the
// simulated cluster substrate: for each topology of Fig. 5 it measures the
// completion time and aggregate throughput of LAM, MPICH and the
// automatically generated routine across message sizes, printing the tables
// and series behind Figs. 6, 7 and 8. It can additionally run the
// synchronization-mode and scheduler ablations.
//
// Usage:
//
//	aapcbench [-topo a|b|c|fig1|all] [-file cluster.topo] [-msizes 8K,64K]
//	          [-bw Mbps] [-alpha seconds] [-mineff f] [-jitter f]
//	          [-ablation] [-plot] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
	"github.com/aapc-sched/aapcsched/internal/trace"
)

// printTrace renders the sender timeline of the generated routine.
func printTrace(g *topology.Graph, net simnet.Config, msize int) error {
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		return err
	}
	cfg := net
	cfg.Graph = g
	elapsed, records, stats, err := harness.MeasureTracedStats(cfg, sc.Fn(), msize)
	if err != nil {
		return err
	}
	tl := trace.New(records)
	st := tl.Stats()
	fmt.Printf("\ngenerated routine at %s: %d data flows, %d sync messages, peak concurrency %d\n",
		harness.FormatMsize(msize), st.DataFlows, st.ControlFlows, st.MaxConcurrentData)
	fmt.Print(tl.Gantt(96))
	fmt.Print(trace.UtilizationReport(g, stats, elapsed))
	return nil
}

func main() {
	var (
		topo     = flag.String("topo", "all", "topology preset: a, b, c, fig1 or all")
		file     = flag.String("file", "", "topology DSL file (overrides -topo)")
		msizes   = flag.String("msizes", "", "comma-separated message sizes (e.g. 8K,64K,256K); default the paper's 8K..256K")
		bwMbps   = flag.Float64("bw", 100, "link bandwidth in Mbps")
		alpha    = flag.Float64("alpha", simnet.DefaultStartupLatency, "per-message startup latency in seconds")
		minEff   = flag.Float64("mineff", simnet.DefaultMinEfficiency, "asymptotic link efficiency under contention (1 = ideal fluid)")
		ablation = flag.Bool("ablation", false, "also run synchronization and scheduler ablations")
		plot     = flag.Bool("plot", false, "render ASCII throughput plots")
		gantt    = flag.Bool("trace", false, "render a sender Gantt chart of the generated routine at the smallest message size")
		jitter   = flag.Float64("jitter", 0, "per-message startup jitter fraction (models OS noise; 0 = deterministic lockstep)")
		control  = flag.Float64("control", 0, "startup latency for control-sized messages (seconds; 0 = same as -alpha)")
		csvPath  = flag.String("csv", "", "append results as CSV to this file ('-' for stdout)")
		iters    = flag.Int("iters", 1, "back-to-back invocations per cell, reporting the mean (the paper uses 10)")
	)
	flag.Parse()
	if err := run(*topo, *file, *msizes, *bwMbps, *alpha, *minEff, *ablation, *plot, *gantt, *jitter, *control, *csvPath, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "aapcbench:", err)
		os.Exit(1)
	}
}

func run(topo, file, msizes string, bwMbps, alpha, minEff float64, ablation, plot, gantt bool, jitter, control float64, csvPath string, iters int) error {
	sizes, err := parseMsizes(msizes)
	if err != nil {
		return err
	}
	net := simnet.Config{
		LinkBandwidth:  bwMbps * 1e6 / 8,
		StartupLatency: alpha,
		MinEfficiency:  minEff,
		JitterFrac:     jitter,
		JitterSeed:     1,
		ControlLatency: control,
	}
	type target struct {
		name  string
		graph *topology.Graph
	}
	var targets []target
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		g, err := topology.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		targets = append(targets, target{name: file, graph: g})
	case topo == "all":
		for _, name := range []string{"a", "b", "c"} {
			g, err := harness.Preset(name)
			if err != nil {
				return err
			}
			targets = append(targets, target{name: "topology (" + name + ")", graph: g})
		}
	default:
		g, err := harness.Preset(topo)
		if err != nil {
			return err
		}
		targets = append(targets, target{name: "topology (" + topo + ")", graph: g})
	}

	for _, tg := range targets {
		algs := []harness.Algorithm{harness.LAM(), harness.MPICHAlg(), harness.Ours(alltoall.PairwiseSync)}
		if ablation {
			algs = append(algs,
				harness.Ours(alltoall.BarrierSync),
				harness.Ours(alltoall.NoSync),
				harness.OursGreedy(),
			)
		}
		exp := &harness.Experiment{
			Name:       tg.name,
			Graph:      tg.graph,
			Msizes:     sizes,
			Algorithms: algs,
			Net:        net,
			Iterations: iters,
		}
		rep, err := exp.Run()
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if csvPath != "" {
			if err := appendCSV(csvPath, rep.CSV()); err != nil {
				return err
			}
		}
		if plot {
			fmt.Print(rep.ThroughputPlot(14))
		}
		if gantt {
			if err := printTrace(tg.graph, net, rep.Msizes[0]); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

// appendCSV writes CSV rows to a file or stdout.
func appendCSV(path, csv string) error {
	if path == "-" {
		_, err := fmt.Print(csv)
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(csv)
	return err
}

func parseMsizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil // Experiment.Run defaults to the paper's sizes
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := 1
		switch {
		case strings.HasSuffix(part, "M"):
			mult = 1 << 20
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "K"):
			mult = 1 << 10
			part = part[:len(part)-1]
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad message size %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive message size %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
