// Command aapcbench reproduces the paper's evaluation (Section 6) on the
// simulated cluster substrate: for each topology of Fig. 5 it measures the
// completion time and aggregate throughput of LAM, MPICH and the
// automatically generated routine across message sizes, printing the tables
// and series behind Figs. 6, 7 and 8. It can additionally run the
// synchronization-mode and scheduler ablations, emit machine-readable
// BENCH_<name>.json reports (-json), and render a previously recorded obsv
// JSONL event trace with the same Gantt pipeline used for simulator runs
// (-render).
//
// Usage:
//
//	aapcbench [-topo a|b|c|fig1|all] [-file cluster.topo] [-msizes 8K,64K]
//	          [-bw Mbps] [-alpha seconds] [-mineff f] [-jitter f]
//	          [-parallel n] [-engine fast|reference]
//	          [-ablation] [-plot] [-trace] [-json dir] [-render trace.jsonl]
//	          [-cpuprofile file] [-memprofile file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
	"github.com/aapc-sched/aapcsched/internal/trace"
)

// options collects every flag of the driver.
type options struct {
	topo     string
	file     string
	msizes   string
	bwMbps   float64
	alpha    float64
	minEff   float64
	ablation bool
	plot     bool
	gantt    bool
	jitter   float64
	control  float64
	csvPath  string
	iters    int
	jsonDir  string
	render   string
	parallel int
	engine   string
	cpuProf  string
	memProf  string
}

// printTrace renders the sender timeline of the generated routine.
func printTrace(g *topology.Graph, net simnet.Config, msize int) error {
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		return err
	}
	cfg := net
	cfg.Graph = g
	elapsed, records, stats, err := harness.MeasureTracedStats(cfg, sc.Fn(), msize)
	if err != nil {
		return err
	}
	tl := trace.NewWithRanks(records, g.NumMachines())
	st := tl.Stats()
	fmt.Printf("\ngenerated routine at %s: %d data flows, %d sync messages, peak concurrency %d\n",
		harness.FormatMsize(msize), st.DataFlows, st.ControlFlows, st.MaxConcurrentData)
	fmt.Print(tl.Gantt(96))
	fmt.Print(trace.UtilizationReport(g, stats, elapsed))
	return nil
}

// renderTrace loads an obsv JSONL event trace and renders it with the same
// timeline pipeline used for simulator flow records.
func renderTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta, events, err := obsv.ReadJSONL(f)
	if err != nil {
		return err
	}
	tl := trace.FromEvents(meta, events)
	st := tl.Stats()
	label := meta.Name
	if label == "" {
		label = path
	}
	fmt.Printf("trace %s (%s, %d ranks): %d data flows, %d control flows, peak concurrency %d\n",
		label, meta.Transport, meta.Ranks, st.DataFlows, st.ControlFlows, st.MaxConcurrentData)
	fmt.Print(tl.Gantt(96))
	fmt.Print(obsv.FormatPhaseStats(obsv.PhaseStats(events)))
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topo", "all", "topology preset: a, b, c, fig1 or all")
	flag.StringVar(&o.file, "file", "", "topology DSL file (overrides -topo)")
	flag.StringVar(&o.msizes, "msizes", "", "comma-separated message sizes (e.g. 8K,64K,256K); default the paper's 8K..256K")
	flag.Float64Var(&o.bwMbps, "bw", 100, "link bandwidth in Mbps")
	flag.Float64Var(&o.alpha, "alpha", simnet.DefaultStartupLatency, "per-message startup latency in seconds")
	flag.Float64Var(&o.minEff, "mineff", simnet.DefaultMinEfficiency, "asymptotic link efficiency under contention (1 = ideal fluid)")
	flag.BoolVar(&o.ablation, "ablation", false, "also run synchronization and scheduler ablations")
	flag.BoolVar(&o.plot, "plot", false, "render ASCII throughput plots")
	flag.BoolVar(&o.gantt, "trace", false, "render a sender Gantt chart of the generated routine at the smallest message size")
	flag.Float64Var(&o.jitter, "jitter", 0, "per-message startup jitter fraction (models OS noise; 0 = deterministic lockstep)")
	flag.Float64Var(&o.control, "control", 0, "startup latency for control-sized messages (seconds; 0 = same as -alpha)")
	flag.StringVar(&o.csvPath, "csv", "", "append results as CSV to this file ('-' for stdout)")
	flag.IntVar(&o.iters, "iters", 1, "back-to-back invocations per cell, reporting the mean (the paper uses 10)")
	flag.StringVar(&o.jsonDir, "json", "", "write a machine-readable BENCH_<name>.json report per topology into this directory")
	flag.StringVar(&o.render, "render", "", "render an obsv JSONL event trace file and exit")
	flag.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "measure up to n (algorithm, msize) cells concurrently; 1 = serial")
	flag.StringVar(&o.engine, "engine", simnet.RateEngineFast, "max-min rate engine: fast (aggregated) or reference (dense oracle)")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "aapcbench:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.render != "" {
		return renderTrace(o.render)
	}
	if o.cpuProf != "" {
		f, err := os.Create(o.cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProf != "" {
		f, err := os.Create(o.memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aapcbench: memprofile:", err)
			}
			f.Close()
		}()
	}
	sizes, err := parseMsizes(o.msizes)
	if err != nil {
		return err
	}
	net := simnet.Config{
		LinkBandwidth:  o.bwMbps * 1e6 / 8,
		StartupLatency: o.alpha,
		MinEfficiency:  o.minEff,
		JitterFrac:     o.jitter,
		JitterSeed:     1,
		ControlLatency: o.control,
		RateEngine:     o.engine,
	}
	type target struct {
		name  string // report label
		short string // file-name stem for -json
		graph *topology.Graph
	}
	var targets []target
	switch {
	case o.file != "":
		f, err := os.Open(o.file)
		if err != nil {
			return err
		}
		g, err := topology.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		short := strings.TrimSuffix(filepath.Base(o.file), filepath.Ext(o.file))
		targets = append(targets, target{name: o.file, short: short, graph: g})
	case o.topo == "all":
		for _, name := range []string{"a", "b", "c"} {
			g, err := harness.Preset(name)
			if err != nil {
				return err
			}
			targets = append(targets, target{name: "topology (" + name + ")", short: name, graph: g})
		}
	default:
		g, err := harness.Preset(o.topo)
		if err != nil {
			return err
		}
		targets = append(targets, target{name: "topology (" + o.topo + ")", short: o.topo, graph: g})
	}

	for _, tg := range targets {
		algs := []harness.Algorithm{harness.LAM(), harness.MPICHAlg(), harness.Ours(alltoall.PairwiseSync)}
		if o.ablation {
			algs = append(algs,
				harness.Ours(alltoall.BarrierSync),
				harness.Ours(alltoall.NoSync),
				harness.OursGreedy(),
			)
		}
		exp := &harness.Experiment{
			Name:       tg.name,
			Graph:      tg.graph,
			Msizes:     sizes,
			Algorithms: algs,
			Net:        net,
			Iterations: o.iters,
			Parallel:   o.parallel,
		}
		rep, err := exp.Run()
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if o.csvPath != "" {
			if err := appendCSV(o.csvPath, rep.CSV()); err != nil {
				return err
			}
		}
		if o.plot {
			fmt.Print(rep.ThroughputPlot(14))
		}
		if o.gantt {
			if err := printTrace(tg.graph, net, rep.Msizes[0]); err != nil {
				return err
			}
		}
		if o.jsonDir != "" {
			path, err := writeJSONReport(o.jsonDir, tg.short, tg.graph, net, rep)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	return nil
}

// benchCell is one (algorithm, msize) measurement of the JSON report.
type benchCell struct {
	Algorithm      string  `json:"algorithm"`
	Msize          int     `json:"msize"`
	Seconds        float64 `json:"seconds"`
	ThroughputMbps float64 `json:"throughput_mbps"`
}

// benchPhases is the per-msize phase breakdown of the generated routine,
// recorded through the obsv instrumentation layer.
type benchPhases struct {
	Msize           int              `json:"msize"`
	Seconds         float64          `json:"seconds"`
	Events          int              `json:"events"`
	SyncWaitSeconds float64          `json:"sync_wait_seconds"`
	Phases          []obsv.PhaseStat `json:"phases"`
}

// benchOverhead quantifies the instrumentation cost: the compiled routine on
// the in-process mem transport, wall-clocked bare versus instrumented
// (best-of-N; see measureOverhead).
type benchOverhead struct {
	Msize               int     `json:"msize"`
	BareWallSeconds     float64 `json:"bare_wall_seconds"`
	ObservedWallSeconds float64 `json:"observed_wall_seconds"`
	OverheadFrac        float64 `json:"overhead_frac"`
	EventsPerRank       float64 `json:"events_per_rank"`
}

// benchJSON is the schema of BENCH_<name>.json.
type benchJSON struct {
	Name       string        `json:"name"`
	Machines   int           `json:"machines"`
	Load       int           `json:"load"`
	PeakMbps   float64       `json:"peak_mbps"`
	Msizes     []int         `json:"msizes"`
	Algorithms []string      `json:"algorithms"`
	Cells      []benchCell   `json:"cells"`
	Phases     []benchPhases `json:"phases,omitempty"`
	Overhead   benchOverhead `json:"overhead"`
}

// writeJSONReport measures the generated routine once more per message size
// through the obsv instrumentation layer (phase drift, sync stalls) and
// writes the full machine-readable report as BENCH_<short>.json in dir.
func writeJSONReport(dir, short string, g *topology.Graph, net simnet.Config, rep *harness.Report) (string, error) {
	out := benchJSON{
		Name:       short,
		Machines:   rep.Machines,
		Load:       rep.Load,
		PeakMbps:   rep.PeakMbps,
		Msizes:     rep.Msizes,
		Algorithms: rep.Algorithms,
	}
	for _, r := range rep.Rows {
		out.Cells = append(out.Cells, benchCell{
			Algorithm:      r.Algorithm,
			Msize:          r.Msize,
			Seconds:        r.Seconds,
			ThroughputMbps: r.ThroughputMbps,
		})
	}
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		return "", err
	}
	cfg := net
	cfg.Graph = g
	for i, msize := range rep.Msizes {
		elapsed, recs, err := harness.MeasureObserved(cfg, sc.Fn(), msize)
		if err != nil {
			return "", err
		}
		events := obsv.MergedEvents(recs...)
		ph := benchPhases{Msize: msize, Seconds: elapsed, Events: len(events)}
		for _, st := range obsv.PhaseStats(events) {
			ph.SyncWaitSeconds += st.SyncWaitSeconds
			ph.Phases = append(ph.Phases, st)
		}
		out.Phases = append(out.Phases, ph)
		// Overhead is measured at the largest message size, where data
		// movement (not per-run fixed costs) dominates — the regime the
		// paper's claims are about.
		if i == len(rep.Msizes)-1 {
			ov, err := measureOverhead(sc, msize)
			if err != nil {
				return "", err
			}
			ov.EventsPerRank = float64(len(events)) / float64(rep.Machines)
			out.Overhead = ov
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+short+".json")
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// measureOverhead times the compiled routine on the in-process mem transport
// (real byte movement — the configuration the ≤5% overhead target is stated
// for) bare versus instrumented. Best-of-N interleaved wall times, so
// scheduler noise and first-run warmup drop out.
func measureOverhead(sc *alltoall.Scheduled, msize int) (benchOverhead, error) {
	n := sc.NumRanks()
	runOnce := func(instrument bool) (float64, error) {
		t0 := time.Now()
		err := mem.Run(n, func(c mpi.Comm) error {
			if instrument {
				c = obsv.Instrument(c, obsv.NewRecorder(c.Rank()))
			}
			return sc.Fn()(c, alltoall.NewShared(msize), msize)
		})
		return time.Since(t0).Seconds(), err
	}
	ov := benchOverhead{Msize: msize}
	bareWall, obsWall := math.Inf(1), math.Inf(1)
	const reps = 7
	for r := 0; r < reps; r++ {
		w, err := runOnce(false)
		if err != nil {
			return ov, err
		}
		bareWall = math.Min(bareWall, w)
		if w, err = runOnce(true); err != nil {
			return ov, err
		}
		obsWall = math.Min(obsWall, w)
	}
	ov.BareWallSeconds, ov.ObservedWallSeconds = bareWall, obsWall
	if bareWall > 0 {
		ov.OverheadFrac = obsWall/bareWall - 1
	}
	return ov, nil
}

// appendCSV writes CSV rows to a file or stdout.
func appendCSV(path, csv string) error {
	if path == "-" {
		_, err := fmt.Print(csv)
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(csv)
	return err
}

func parseMsizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil // Experiment.Run defaults to the paper's sizes
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := 1
		switch {
		case strings.HasSuffix(part, "M"):
			mult = 1 << 20
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "K"):
			mult = 1 << 10
			part = part[:len(part)-1]
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad message size %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive message size %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
