package main

import (
	"reflect"
	"testing"
)

func TestParseMsizes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"", nil},
		{"8K", []int{8192}},
		{"8K,64K,256K", []int{8192, 65536, 262144}},
		{"1M", []int{1 << 20}},
		{"100", []int{100}},
		{" 4K , 2K ", []int{4096, 2048}},
	}
	for _, tc := range cases {
		got, err := parseMsizes(tc.in)
		if err != nil {
			t.Errorf("parseMsizes(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseMsizes(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"x", "8Q", "-4K", "0"} {
		if _, err := parseMsizes(bad); err == nil {
			t.Errorf("parseMsizes(%q): want error", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Full driver path on the small example topology, all features on.
	err := run("fig1", "", "8K", 100, 0.5e-3, 0.6, true, true, true, 0.3, 1e-4, "-", 2)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTopologyFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/c.topo"
	if err := writeTestTopo(path); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "4K", 100, 0.5e-3, 1, false, false, false, 0, 0, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", "", 100, 0, 0.6, false, false, false, 0, 0, "", 1); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run("", "/does/not/exist", "", 100, 0, 0.6, false, false, false, 0, 0, "", 1); err == nil {
		t.Error("want error for missing file")
	}
	if err := run("fig1", "", "zap", 100, 0, 0.6, false, false, false, 0, 0, "", 1); err == nil {
		t.Error("want error for bad msizes")
	}
}
