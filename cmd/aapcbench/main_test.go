package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseMsizes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"", nil},
		{"8K", []int{8192}},
		{"8K,64K,256K", []int{8192, 65536, 262144}},
		{"1M", []int{1 << 20}},
		{"100", []int{100}},
		{" 4K , 2K ", []int{4096, 2048}},
	}
	for _, tc := range cases {
		got, err := parseMsizes(tc.in)
		if err != nil {
			t.Errorf("parseMsizes(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseMsizes(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"x", "8Q", "-4K", "0"} {
		if _, err := parseMsizes(bad); err == nil {
			t.Errorf("parseMsizes(%q): want error", bad)
		}
	}
}

// benchOpts builds an options value with sane test defaults and applies the
// mutation.
func benchOpts(mutate func(*options)) options {
	o := options{
		topo:   "fig1",
		msizes: "8K",
		bwMbps: 100,
		alpha:  0.5e-3,
		minEff: 0.6,
		iters:  1,
	}
	if mutate != nil {
		mutate(&o)
	}
	return o
}

func TestRunEndToEnd(t *testing.T) {
	// Full driver path on the small example topology, all features on.
	err := run(benchOpts(func(o *options) {
		o.ablation = true
		o.plot = true
		o.gantt = true
		o.jitter = 0.3
		o.control = 1e-4
		o.csvPath = "-"
		o.iters = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTopologyFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/c.topo"
	if err := writeTestTopo(path); err != nil {
		t.Fatal(err)
	}
	err := run(benchOpts(func(o *options) {
		o.topo = ""
		o.file = path
		o.msizes = "4K"
		o.minEff = 1
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONReport(t *testing.T) {
	dir := t.TempDir()
	if err := run(benchOpts(func(o *options) { o.jsonDir = dir })); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_fig1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep benchJSON
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("BENCH_fig1.json does not parse: %v", err)
	}
	if rep.Name != "fig1" || rep.Machines == 0 || len(rep.Cells) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if len(rep.Phases) == 0 || len(rep.Phases[0].Phases) == 0 {
		t.Fatalf("report has no phase breakdown: %+v", rep.Phases)
	}
	for _, c := range rep.Cells {
		if c.Seconds <= 0 || c.ThroughputMbps <= 0 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(benchOpts(func(o *options) { o.topo = "nope"; o.msizes = "" })); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run(benchOpts(func(o *options) { o.topo = ""; o.file = "/does/not/exist"; o.msizes = "" })); err == nil {
		t.Error("want error for missing file")
	}
	if err := run(benchOpts(func(o *options) { o.msizes = "zap" })); err == nil {
		t.Error("want error for bad msizes")
	}
	if err := run(benchOpts(func(o *options) { o.render = "/does/not/exist.jsonl" })); err == nil {
		t.Error("want error for missing render file")
	}
}
