// Command aapcd is the schedule-compiler daemon: it compiles the AAPC
// message schedules of Faraj & Yuan (IPPS 2005) on demand for an evolving
// cluster topology and serves them over HTTP/JSON.
//
// Start it on a preset or a topology DSL file and ask for schedules:
//
//	aapcd -addr 127.0.0.1:8642 -topo b &
//	curl 'http://127.0.0.1:8642/v1/schedule?alg=ours&msize=65536&syncs=1'
//	curl 'http://127.0.0.1:8642/v1/topology'
//	curl 'http://127.0.0.1:8642/metrics'
//
// Topology changes stream over one connection, one delta per line, one JSON
// ack per delta; small deltas patch every cached schedule incrementally
// instead of recompiling:
//
//	printf 'join n32 s1\nleave n7\n' | curl --no-buffer --data-binary @- 'http://127.0.0.1:8642/v1/updates'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/obsv/collect"
	"github.com/aapc-sched/aapcsched/internal/sched"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// options collects the command-line configuration.
type options struct {
	addr    string
	preset  string
	file    string
	cache   int
	shards  int
	workers int
	history int
	pprof   bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8642", "listen address")
	flag.StringVar(&o.preset, "topo", "fig1", "boot topology preset (a, b, c, bg, fig1)")
	flag.StringVar(&o.file, "file", "", "boot topology DSL file (overrides -topo)")
	flag.IntVar(&o.cache, "cache", 64, "cached schedules per shard")
	flag.IntVar(&o.shards, "shards", 8, "cache shard count")
	flag.IntVar(&o.workers, "workers", 0, "parallel greedy compile workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.history, "history", 32, "retained topology versions")
	flag.BoolVar(&o.pprof, "pprof", false,
		"serve /debug/pprof and /debug/vars on the daemon address and enable block/mutex profiling")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, &o, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "aapcd: %v\n", err)
		os.Exit(1)
	}
}

// bootTopology loads the daemon's starting graph from -file or -topo.
func bootTopology(o *options) (*topology.Graph, error) {
	if o.file != "" {
		f, err := os.Open(o.file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.Parse(f)
	}
	return harness.Preset(o.preset)
}

// newServer builds the daemon and its listener from the options.
func newServer(o *options) (*http.Server, net.Listener, error) {
	g, err := bootTopology(o)
	if err != nil {
		return nil, nil, err
	}
	reg := obsv.NewRegistry()
	d, err := sched.New(sched.Options{
		Graph:         g,
		CacheCap:      o.cache,
		Shards:        o.shards,
		GreedyWorkers: o.workers,
		History:       o.history,
		Registry:      reg,
	})
	if err != nil {
		return nil, nil, err
	}
	// The trace collector rides on the daemon mux: nodes POST their JSONL
	// traces to /v1/trace/ingest and anyone can pull the merged
	// critical-path/straggler report. Link attribution always resolves
	// against the daemon's CURRENT topology version, so reports stay
	// truthful across join/leave deltas.
	store := collect.NewStore()
	reg.AddCounters(store.Counters())
	mux := http.NewServeMux()
	mux.Handle("/v1/trace/", collect.HandlerLive(store, func() *topology.Graph {
		return d.Store().Current().Graph
	}))
	if o.pprof {
		// The obsv import registers net/http/pprof and expvar on the
		// default mux; profiling the scheduler's lock and block behavior
		// needs the runtime hooks turned on too.
		runtime.SetBlockProfileRate(1)
		runtime.SetMutexProfileFraction(5)
		mux.Handle("/debug/", http.DefaultServeMux)
	}
	mux.Handle("/", sched.NewServer(d, reg))
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, nil, err
	}
	return &http.Server{Handler: mux}, ln, nil
}

// run serves the daemon until ctx is cancelled, then drains in-flight
// requests and exits. The listen address (with the resolved port) is logged
// to w before serving, so scripts can start on :0 and scrape the port.
func run(ctx context.Context, o *options, w interface{ Write([]byte) (int, error) }) error {
	srv, ln, err := newServer(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "aapcd: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(w, "aapcd: drained and stopped\n")
	return nil
}
