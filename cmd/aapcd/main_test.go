package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/sched"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// testOptions is the flag-default configuration on an ephemeral port.
func testOptions(mutate func(*options)) *options {
	o := &options{
		addr:    "127.0.0.1:0",
		preset:  "fig1",
		cache:   64,
		shards:  8,
		history: 32,
	}
	if mutate != nil {
		mutate(o)
	}
	return o
}

func TestBootTopology(t *testing.T) {
	g, err := bootTopology(testOptions(nil))
	if err != nil || g.NumMachines() != 6 {
		t.Fatalf("fig1 preset: %v, %v", g, err)
	}
	if _, err := bootTopology(testOptions(func(o *options) { o.preset = "nope" })); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := bootTopology(testOptions(func(o *options) { o.file = "/does/not/exist" })); err == nil {
		t.Error("missing topology file accepted")
	}

	// A DSL file round-trips through -file.
	path := filepath.Join(t.TempDir(), "topo.dsl")
	if err := os.WriteFile(path, []byte(harness.Fig1().Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := bootTopology(testOptions(func(o *options) { o.file = path }))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Hash() != g.Hash() {
		t.Error("-file round-trip changed the topology hash")
	}
}

// TestDaemonEndToEnd boots the daemon the way main does and exercises the
// full loop over real HTTP: compile, update stream, patched re-serve,
// metrics.
func TestDaemonEndToEnd(t *testing.T) {
	srv, ln, err := newServer(testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	cl := sched.NewClient(base, &http.Client{})
	ctx := context.Background()

	resp, err := cl.Schedule(ctx, sched.AlgOurs, 64<<10, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumRanks != 6 || resp.Cached {
		t.Fatalf("first schedule: %+v", resp)
	}

	st, err := cl.StartUpdates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ack, err := st.Apply(topology.Delta{Op: topology.OpJoin, Node: "n6", Attach: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Error != "" || ack.Version != 2 || ack.Patched != 1 {
		t.Fatalf("join ack: %+v", ack)
	}

	after, err := cl.Schedule(ctx, sched.AlgOurs, 64<<10, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Incremental || after.NumRanks != 7 {
		t.Fatalf("patched schedule: incremental=%v ranks=%d", after.Incremental, after.NumRanks)
	}
	topo, err := cl.Topology(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.ParseString(topo.DSL)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(g, after.ToSchedule(), false); err != nil {
		t.Errorf("served schedule invalid on served topology: %v", err)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb bytes.Buffer
	if _, err := sb.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aapcd_topology_updates_total 1") {
		t.Error("metrics missing the topology-update counter")
	}
}

// TestDaemonTraceCollector: the trace collector rides the daemon mux —
// ingest merges into the shared store, reports resolve against the daemon's
// topology, the trace counters land on /metrics, and -pprof exposes the
// profiling endpoints.
func TestDaemonTraceCollector(t *testing.T) {
	srv, ln, err := newServer(testOptions(func(o *options) { o.pprof = true }))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	meta := obsv.Meta{Version: 1, Ranks: 2, Transport: "mem", Name: "ours", Msize: 64}
	evs := []obsv.Event{
		{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 1, Start: 0.1, End: 0.2, Bytes: 4096},
		{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 1, LinkSeq: 1, Start: 0.1, End: 0.3, Deliver: 0.2, Bytes: 4096},
	}
	var buf bytes.Buffer
	if err := obsv.WriteJSONL(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/trace/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/trace/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(body.String(), "2 spans (1 causally linked)") {
		t.Errorf("trace report wrong:\n%s", body.String())
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(body.String(), "aapc_trace_spans_total 2") {
		t.Errorf("metrics missing trace counters:\n%s", body.String())
	}

	// The scheduler API still resolves through the outer mux.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz through outer mux: %d", resp.StatusCode)
	}

	// -pprof exposes the profile index.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: %d", resp.StatusCode)
	}
}

// logBuffer is a concurrency-safe writer for run's log lines.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRunGracefulShutdown: run serves until the context is cancelled, then
// drains and returns nil — the signal path main wires up.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out logBuffer
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, testOptions(nil), &out) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its address: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "http://") {
			line := s[strings.Index(s, "http://"):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not stop after cancel")
	}
	if !strings.Contains(out.String(), "drained and stopped") {
		t.Errorf("missing drain log line: %q", out.String())
	}
}
