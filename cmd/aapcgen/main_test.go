package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunPresetSummary(t *testing.T) {
	if err := run("", "fig1", "", "", "main", "newX", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmitsFiles(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/s.json"
	goPath := dir + "/r.go"
	if err := run("", "fig1", jsonPath, goPath, "main", "newFig1", false); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jdata), `"numPhases": 9`) {
		t.Errorf("JSON output missing phase count")
	}
	gdata, err := os.ReadFile(goPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gdata), "func newFig1()") {
		t.Errorf("Go output missing constructor")
	}
}

func TestRunTopologyFileAndErrors(t *testing.T) {
	dir := t.TempDir()
	topo := dir + "/t.topo"
	if err := os.WriteFile(topo, []byte("switch s\nmachines a b c\nlink s a\nlink s b\nlink s c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(topo, "", "-", "", "main", "newX", false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", "", "", "main", "newX", false); err == nil {
		t.Error("want error without -file or -topo")
	}
	if err := run("", "zzz", "", "", "main", "newX", false); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := run("/nope", "", "", "", "main", "newX", false); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/s.json"
	if err := run("", "fig1", jsonPath, "", "main", "newX", false); err != nil {
		t.Fatal(err)
	}
	if err := runCheck("", "fig1", jsonPath); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// A schedule for the wrong topology must be rejected.
	if err := runCheck("", "a", jsonPath); err == nil {
		t.Error("want error for schedule/topology mismatch")
	}
	// Corrupt JSON must be rejected.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCheck("", "fig1", bad); err == nil {
		t.Error("want error for corrupt JSON")
	}
	if err := runCheck("", "fig1", dir+"/missing.json"); err == nil {
		t.Error("want error for missing file")
	}
}

func TestWiringMode(t *testing.T) {
	dir := t.TempDir()
	wfile := dir + "/w.topo"
	wtext := "switches s0 s1 s2\nmachines a b c\nlink s0 s1\nlink s1 s2\nlink s2 s0\nlink s0 a\nlink s1 b\nlink s2 c\n"
	if err := os.WriteFile(wfile, []byte(wtext), 0o644); err != nil {
		t.Fatal(err)
	}
	topoFromWiring = true
	defer func() { topoFromWiring = false }()
	if err := run(wfile, "", "", "", "main", "newX", false); err != nil {
		t.Fatalf("wiring generation: %v", err)
	}
}
