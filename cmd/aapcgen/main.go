// Command aapcgen is the automatic routine generator of Section 5: it takes
// an Ethernet switched cluster description and produces a customized
// MPI_Alltoall routine — the contention-free schedule plus the minimal
// pair-wise synchronizations — either as JSON or as compilable Go source.
//
// Usage:
//
//	aapcgen -file cluster.topo [-json out.json] [-go out.go]
//	        [-package main] [-func newAlltoall] [-v]
//	aapcgen -file cluster.topo -check schedule.json
//
// With no output flags it prints a human-readable summary of the generated
// schedule. With -check it validates an externally produced schedule (JSON)
// against the topology instead of generating one: coverage, per-phase
// contention freedom, and whether the phase count is load-optimal.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aapc-sched/aapcsched/internal/gen"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

func main() {
	var (
		file     = flag.String("file", "", "topology DSL file")
		preset   = flag.String("topo", "", "topology preset (a, b, c, fig1) instead of -file")
		jsonOut  = flag.String("json", "", "write the schedule as JSON to this file ('-' for stdout)")
		goOut    = flag.String("go", "", "write generated Go source to this file ('-' for stdout)")
		pkg      = flag.String("package", "main", "package name for generated Go source")
		funcName = flag.String("func", "newGeneratedAlltoall", "constructor name for generated Go source")
		verbose  = flag.Bool("v", false, "print the full phase-by-phase schedule")
		check    = flag.String("check", "", "validate this schedule JSON against the topology instead of generating")
		wiring   = flag.Bool("wiring", false, "treat -file as raw cabling (cycles allowed); derive the forwarding tree first")
	)
	flag.Parse()
	if *wiring {
		topoFromWiring = true
	}
	if *check != "" {
		if err := runCheck(*file, *preset, *check); err != nil {
			fmt.Fprintln(os.Stderr, "aapcgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*file, *preset, *jsonOut, *goOut, *pkg, *funcName, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "aapcgen:", err)
		os.Exit(1)
	}
}

func run(file, preset, jsonOut, goOut, pkg, funcName string, verbose bool) error {
	g, err := loadTopology(file, preset)
	if err != nil {
		return err
	}

	r, err := gen.Generate(g)
	if err != nil {
		return err
	}

	fmt.Printf("topology: %d machines, %d switches, %d links\n",
		g.NumMachines(), g.NumSwitches(), g.NumLinks())
	fmt.Printf("AAPC load (bottleneck): %d\n", g.AAPCLoad())
	fmt.Printf("schedule: %d contention-free phases, %d messages\n",
		len(r.Schedule.Phases), r.Schedule.NumMessages())
	fmt.Printf("synchronizations: %d (reduced from %d conflicting pairs)\n",
		r.Plan.NumSyncs(), r.Plan.ConflictPairs)
	if verbose {
		fmt.Print(r.Schedule)
	}

	if jsonOut != "" {
		data, err := r.MarshalJSON()
		if err != nil {
			return err
		}
		if err := writeOut(jsonOut, append(data, '\n')); err != nil {
			return err
		}
	}
	if goOut != "" {
		src, err := r.GoSource(pkg, funcName)
		if err != nil {
			return err
		}
		if err := writeOut(goOut, src); err != nil {
			return err
		}
	}
	return nil
}

// runCheck validates an external schedule against the topology.
func runCheck(file, preset, schedPath string) error {
	g, err := loadTopology(file, preset)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	s, plan, err := gen.UnmarshalRoutineJSON(data)
	if err != nil {
		return err
	}
	if err := schedule.Verify(g, s, false); err != nil {
		return fmt.Errorf("schedule INVALID: %w", err)
	}
	fmt.Printf("schedule valid: %d messages in %d contention-free phases\n",
		s.NumMessages(), len(s.Phases))
	if want := g.AAPCLoad(); len(s.Phases) == want {
		fmt.Printf("phase count is load-optimal (%d)\n", want)
	} else {
		fmt.Printf("phase count %d is NOT load-optimal (load %d)\n", len(s.Phases), want)
	}
	fmt.Printf("synchronizations carried: %d\n", plan.NumSyncs())
	return nil
}

// topoFromWiring switches loadTopology into spanning-tree derivation mode.
var topoFromWiring bool

// loadTopology reads the cluster from -file or -topo.
func loadTopology(file, preset string) (*topology.Graph, error) {
	switch {
	case file != "" && topoFromWiring:
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w, err := topology.ParseWiring(f)
		if err != nil {
			return nil, err
		}
		return w.SpanningTree()
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.Parse(f)
	case preset != "":
		return harness.Preset(preset)
	default:
		return nil, fmt.Errorf("need -file or -topo (see -help)")
	}
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
