package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// writeTestTrace runs the compiled schedule on the mem transport with
// tracing and writes the JSONL trace plus the topology DSL to dir.
func writeTestTrace(t *testing.T, dir string) (tracePath, topoPath string) {
	t.Helper()
	g := topology.New()
	s := g.MustAddSwitch("s0")
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		g.MustConnect(g.MustAddMachine(name), s)
	}
	g.MustValidate()

	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	const msize = 2048
	recs := make([]*obsv.Recorder, g.NumMachines())
	for i := range recs {
		recs[i] = obsv.NewRecorder(i)
	}
	err = mem.Run(len(recs), func(c mpi.Comm) error {
		return sc.Fn()(obsv.Instrument(c, recs[c.Rank()]), alltoall.NewShared(msize), msize)
	})
	if err != nil {
		t.Fatal(err)
	}

	tracePath = filepath.Join(dir, "run.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	meta := obsv.Meta{Ranks: len(recs), Transport: "mem", Name: "ours", Msize: msize}
	if err := obsv.WriteRecorders(f, meta, recs...); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	topoPath = filepath.Join(dir, "topo.dsl")
	if err := os.WriteFile(topoPath, []byte(g.Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	return tracePath, topoPath
}

func TestOfflineReportWithPrediction(t *testing.T) {
	dir := t.TempDir()
	tracePath, topoPath := writeTestTrace(t, dir)

	var out bytes.Buffer
	o := &options{
		report:  tracePath,
		file:    topoPath,
		predict: true,
		common:  true,
	}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"trace report: 4 ranks",
		"straggler: rank",
		"critical path (",
		"sim-vs-real divergence:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// A healthy run on a healthy simulator must not flag links.
	if strings.Contains(text, "!") {
		t.Errorf("clean run flagged a link:\n%s", text)
	}
}

func TestOfflineReportJSON(t *testing.T) {
	dir := t.TempDir()
	tracePath, _ := writeTestTrace(t, dir)
	var out bytes.Buffer
	o := &options{report: tracePath, common: true, jsonOut: true}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"critical"`) {
		t.Errorf("JSON report missing critical path:\n%s", out.String())
	}
}

func TestServeModeIngestAndReport(t *testing.T) {
	dir := t.TempDir()
	tracePath, topoPath := writeTestTrace(t, dir)

	srv, ln, err := newServer(&options{addr: "127.0.0.1:0", file: topoPath, common: true})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/trace/ingest", "application/x-ndjson", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/trace/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "trace report: 4 ranks") {
		t.Errorf("served report wrong:\n%s", body.String())
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "aapc_trace_ingests_total 1") {
		t.Errorf("metrics missing trace counters:\n%s", body.String())
	}
}
