// Command aapctrace is the cluster trace collector and report tool: it
// merges per-rank obsv JSONL span logs onto a common timebase and renders
// causal attribution — the critical path bounding the makespan, the
// straggling rank, per-phase skew, and (given a topology) sim-vs-real
// divergence naming the slow links.
//
// Serve mode runs the collector over HTTP; ranks push their traces and
// anyone pulls the merged report:
//
//	aapctrace -addr 127.0.0.1:8643 -topo fig1 &
//	aapcnode -local -topo fig1 -alg ours -push http://127.0.0.1:8643/v1/trace/ingest
//	curl 'http://127.0.0.1:8643/v1/trace/report?format=text'
//
// Offline mode analyzes a trace file written by aapcnode -trace:
//
//	aapcnode -local -topo fig1 -alg ours -trace run.jsonl
//	aapctrace -report run.jsonl -topo fig1 -predict
//
// With -predict the same schedule is priced in the simulator and every data
// message is compared against its contention-free prediction; links whose
// crossing traffic consistently exceeds factor x the predicted time are
// flagged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/obsv/collect"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// options collects the command-line configuration.
type options struct {
	addr    string
	report  string
	preset  string
	file    string
	alg     string
	msize   int
	predict bool
	factor  float64
	common  bool
	jsonOut bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8643", "collector listen address (serve mode)")
	flag.StringVar(&o.report, "report", "", "analyze this obsv JSONL trace file and exit (offline mode)")
	flag.StringVar(&o.preset, "topo", "", "topology preset for link attribution (a, b, c, bg, fig1)")
	flag.StringVar(&o.file, "topofile", "", "topology DSL file (overrides -topo)")
	flag.StringVar(&o.alg, "alg", "", "algorithm to price for -predict: ours, lam or mpich (default: the trace's)")
	flag.IntVar(&o.msize, "msize", 0, "block size to price for -predict (default: the trace's)")
	flag.BoolVar(&o.predict, "predict", false, "price the schedule in the simulator and report sim-vs-real divergence (needs a topology)")
	flag.Float64Var(&o.factor, "factor", 0, "divergence flag threshold: measured > factor x predicted (0 = default)")
	flag.BoolVar(&o.common, "common-clock", false,
		"assert all ranks share one clock epoch (single-process traces); skips pairwise offset estimation")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the offline report as JSON instead of text")
	flag.Parse()
	if err := run(&o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aapctrace:", err)
		os.Exit(1)
	}
}

// loadGraph resolves the optional topology flags; nil when neither is set.
func loadGraph(o *options) (*topology.Graph, error) {
	if o.file != "" {
		f, err := os.Open(o.file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.Parse(f)
	}
	if o.preset != "" {
		return harness.Preset(o.preset)
	}
	return nil, nil
}

// priceFn resolves the routine to price for the divergence prediction.
func priceFn(g *topology.Graph, alg string) (alltoall.Func, error) {
	switch alg {
	case "", "ours":
		sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
		if err != nil {
			return nil, err
		}
		return sc.Fn(), nil
	case "lam":
		return alltoall.Simple, nil
	case "mpich":
		return alltoall.MPICH, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want ours, lam or mpich)", alg)
	}
}

// offline analyzes one trace file and writes the report to w.
func offline(o *options, g *topology.Graph, w interface{ Write([]byte) (int, error) }) error {
	f, err := os.Open(o.report)
	if err != nil {
		return err
	}
	defer f.Close()
	store := collect.NewStore()
	store.SetCommonClock(o.common)
	if err := store.AddJSONL(f); err != nil {
		return err
	}

	var rep *collect.Report
	if o.predict {
		if g == nil {
			return fmt.Errorf("-predict needs a topology (-topo or -topofile)")
		}
		meta := store.Meta()
		alg := o.alg
		if alg == "" {
			alg = meta.Name
		}
		msize := o.msize
		if msize == 0 {
			msize = meta.Msize
		}
		if msize == 0 {
			return fmt.Errorf("trace carries no message size; pass -msize")
		}
		fn, err := priceFn(g, alg)
		if err != nil {
			return err
		}
		_, flows, err := harness.MeasureTraced(simnet.Config{Graph: g}, fn, msize)
		if err != nil {
			return fmt.Errorf("prediction run: %w", err)
		}
		rep = store.AnalyzeWithPrediction(g, flows, collect.DivergenceOptions{Factor: o.factor})
	} else {
		rep = store.Analyze(g)
	}

	if o.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(w)
	return nil
}

// newServer builds the serve-mode collector and its listener.
func newServer(o *options) (*http.Server, net.Listener, error) {
	g, err := loadGraph(o)
	if err != nil {
		return nil, nil, err
	}
	store := collect.NewStore()
	store.SetCommonClock(o.common)
	reg := obsv.NewRegistry()
	reg.AddCounters(store.Counters())
	mux := http.NewServeMux()
	mux.Handle("/v1/trace/", collect.Handler(store, g))
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, nil, err
	}
	return &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln, nil
}

func run(o *options, w interface{ Write([]byte) (int, error) }) error {
	g, err := loadGraph(o)
	if err != nil {
		return err
	}
	if o.report != "" {
		return offline(o, g, w)
	}
	srv, ln, err := newServer(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "aapctrace: collecting on http://%s\n", ln.Addr())
	return srv.Serve(ln)
}
