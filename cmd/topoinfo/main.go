// Command topoinfo analyzes an Ethernet switched cluster description: link
// loads under the AAPC pattern, bottleneck links, the scheduling root and
// its subtree decomposition, and the peak aggregate throughput bound of
// Section 3.
//
// Usage:
//
//	topoinfo -file cluster.topo [-bw Mbps]
//	topoinfo -topo a
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

func main() {
	var (
		file   = flag.String("file", "", "topology DSL file")
		preset = flag.String("topo", "", "topology preset (a, b, c, fig1) instead of -file")
		bwMbps = flag.Float64("bw", 100, "link bandwidth in Mbps")
		wiring = flag.Bool("wiring", false, "treat -file as raw cabling (cycles allowed) and derive the forwarding tree first")
		dot    = flag.Bool("dot", false, "emit the topology as Graphviz dot and exit")
	)
	flag.Parse()
	if err := run2(*file, *preset, *bwMbps, *wiring, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
}

// run2 resolves flags around the core analyzer.
func run2(file, preset string, bwMbps float64, wiring, dot bool) error {
	var g *topology.Graph
	switch {
	case wiring && file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		w, err := topology.ParseWiring(f)
		f.Close()
		if err != nil {
			return err
		}
		g, err = w.SpanningTree()
		if err != nil {
			return err
		}
		fmt.Printf("spanning tree derived: %d redundant cable(s) blocked\n\n", w.BlockedLinks())
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		var perr error
		g, perr = topology.Parse(f)
		f.Close()
		if perr != nil {
			return perr
		}
	case preset != "":
		var err error
		g, err = harness.Preset(preset)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -file or -topo (see -help)")
	}
	if dot {
		fmt.Print(g.DOT())
		return nil
	}
	return run(g, bwMbps)
}

func run(g *topology.Graph, bwMbps float64) error {

	fmt.Printf("cluster: %d machines, %d switches, %d links\n",
		g.NumMachines(), g.NumSwitches(), g.NumLinks())

	fmt.Println("\nlink loads (AAPC pattern):")
	loads := g.LinkLoads()
	maxLoad := g.AAPCLoad()
	for _, ll := range loads {
		marker := ""
		if ll.Load == maxLoad {
			marker = "  <- bottleneck"
		}
		speed := ""
		if s := g.LinkSpeed(ll.Link); s != 1 {
			speed = fmt.Sprintf("  speed %gx", s)
		}
		fmt.Printf("  %-6s -- %-6s  split %2d/%-2d  load %4d%s%s\n",
			g.Node(ll.Link.U).Name, g.Node(ll.Link.V).Name,
			ll.MachinesU, ll.MachinesV, ll.Load, speed, marker)
	}
	fmt.Printf("\nAAPC load (minimum phases): %d\n", maxLoad)

	ri, err := g.FindRoot()
	if err != nil {
		return err
	}
	fmt.Printf("scheduling root: %s\n", g.Node(ri.Root).Name)
	for i, st := range ri.Subtrees {
		fmt.Printf("  t%d (top %s): %d machines %v\n",
			i, g.Node(st.Top).Name, len(st.Machines), st.Machines)
	}
	fmt.Printf("schedule phases |M0|*(|M|-|M0|): %d\n", ri.NumPhases())

	bw := bwMbps * 1e6 / 8
	fmt.Printf("\nbest-case time per byte of msize: %.3g s\n", g.BestCaseTime(1, bw))
	fmt.Printf("peak aggregate throughput: %.1f Mbps (%.1fx link speed)\n",
		g.PeakAggregateThroughput(bw)*8/1e6, g.PeakAggregateThroughput(bw)/bw)
	if !g.Uniform() {
		wb, ratio := g.WeightedBottleneck()
		fmt.Printf("\nheterogeneous link speeds detected:\n")
		fmt.Printf("weighted bottleneck: %s -- %s (load %d / speed %g = %.1f)\n",
			g.Node(wb.Link.U).Name, g.Node(wb.Link.V).Name,
			wb.Load, g.LinkSpeed(wb.Link), ratio)
		fmt.Printf("weighted peak aggregate throughput: %.1f Mbps\n",
			g.WeightedPeakAggregateThroughput(bw)*8/1e6)
	}
	return nil
}
