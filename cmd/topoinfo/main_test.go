package main

import (
	"os"
	"testing"
)

func TestRunPresets(t *testing.T) {
	for _, preset := range []string{"fig1", "a", "bg"} {
		if err := run2("", preset, 100, false, false); err != nil {
			t.Errorf("%s: %v", preset, err)
		}
	}
	if err := run2("", "fig1", 100, false, true); err != nil {
		t.Errorf("dot: %v", err)
	}
}

func TestRunFileAndErrors(t *testing.T) {
	dir := t.TempDir()
	topo := dir + "/t.topo"
	if err := os.WriteFile(topo, []byte("switch s\nmachines a b c\nlink s a\nlink s b\nlink s c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run2(topo, "", 100, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run2("", "", 100, false, false); err == nil {
		t.Error("want error without inputs")
	}
	if err := run2("/nope", "", 100, false, false); err == nil {
		t.Error("want error for missing file")
	}
	if err := run2("", "zzz", 100, false, false); err == nil {
		t.Error("want error for unknown preset")
	}
	// Wiring mode: a redundant square derives a tree.
	wfile := dir + "/w.topo"
	wtext := "switches s0 s1\nmachines a b\nlink s0 s1\nlink s0 s1\nlink s0 a\nlink s1 b\n"
	if err := os.WriteFile(wfile, []byte(wtext), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run2(wfile, "", 100, true, false); err != nil {
		t.Errorf("wiring: %v", err)
	}
	if err := run2("/nope", "", 100, true, false); err == nil {
		t.Error("want error for missing wiring file")
	}
}
