// Command aapcvet is the repo's static-analysis tool, run through the
// standard vet driver:
//
//	go build -o bin/aapcvet ./cmd/aapcvet
//	go vet -vettool=$PWD/bin/aapcvet ./...
//
// It enforces the project invariants (poolsafe, determinism, waitcheck,
// noalloc) plus ports of the stock shadow, copylocks, and loopclosure
// passes. Individual analyzers are disabled with -<name>=false; single
// findings are suppressed in source with //aapc:allow <name> <reason>.
package main

import "github.com/aapc-sched/aapcsched/internal/analysis"

func main() {
	analysis.Main(analysis.Suite()...)
}
