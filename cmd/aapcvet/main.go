// Command aapcvet is the repo's static-analysis tool, run through the
// standard vet driver:
//
//	go build -o bin/aapcvet ./cmd/aapcvet
//	go vet -vettool=$PWD/bin/aapcvet ./...
//
// It enforces the project invariants (poolsafe, determinism, waitcheck,
// noalloc, copycount, lockorder, spscsafe) plus ports of the stock
// shadow, copylocks, and loopclosure passes. Function summaries flow
// across package boundaries through vet's facts channel, so poolsafe,
// waitcheck, copycount, and lockorder see through call sites.
//
// Individual analyzers are disabled with -<name>=false; single findings
// are suppressed in source with //aapc:allow <name> <reason>. Extra
// modes: -json streams one NDJSON object per diagnostic, and
// -unusedallow flags allow comments whose analyzer no longer reports
// anything at that site.
package main

import "github.com/aapc-sched/aapcsched/internal/analysis"

func main() {
	analysis.Main(analysis.Suite()...)
}
