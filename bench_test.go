// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark is named for the table or figure it reproduces; the
// simulated completion time of a cell is reported as the custom metric
// "sim-ms" (virtual milliseconds — the quantity the paper's tables print),
// while the standard ns/op measures the cost of running the reproduction
// itself.
package aapcsched

import (
	"fmt"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/gen"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// BenchmarkTable1Ring regenerates Table 1: the ring schedule for k
// single-machine subtrees (k = 24, the paper's topology (a) size).
func BenchmarkTable1Ring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if phases := schedule.Ring(24); len(phases) != 23 {
			b.Fatal("wrong phase count")
		}
	}
}

// BenchmarkTable2Rotate regenerates Table 2: the rotate pattern for
// |Mi| = 6, |Mj| = 4.
func BenchmarkTable2Rotate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pat := schedule.RotatePattern(6, 4); len(pat) != 24 {
			b.Fatal("wrong pattern length")
		}
	}
}

// BenchmarkFig3GlobalSchedule regenerates Fig. 3: the extended ring global
// schedule for the Fig. 1 example (|M0|,|M1|,|M2| = 3,2,1).
func BenchmarkFig3GlobalSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gs, err := schedule.NewGroupSchedule([]int{3, 2, 1})
		if err != nil || gs.Total != 9 {
			b.Fatal("wrong global schedule")
		}
	}
}

// BenchmarkTable4Assignment regenerates Table 4 (which embeds the Table 3
// mapping): the complete global and local message assignment for the Fig. 1
// example cluster.
func BenchmarkTable4Assignment(b *testing.B) {
	g := harness.Fig1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := schedule.Build(g)
		if err != nil || len(s.Phases) != 9 {
			b.Fatal("wrong schedule")
		}
	}
}

// BenchmarkSection5SyncPlan regenerates the Section 5 synchronization
// computation: conflict detection and redundant-synchronization removal for
// the Fig. 1 schedule.
func BenchmarkSection5SyncPlan(b *testing.B) {
	g := harness.Fig1()
	s, err := schedule.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := syncplan.Build(g, s)
		if err != nil || plan.NumSyncs() == 0 {
			b.Fatal("bad plan")
		}
	}
}

// BenchmarkRoutineGeneration measures the full automatic routine generator
// (Section 5) on each experimental topology.
func BenchmarkRoutineGeneration(b *testing.B) {
	for _, preset := range []string{"fig1", "a", "b", "c"} {
		g, err := harness.Preset(preset)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchFigure runs one of the paper's evaluation figures: every
// (algorithm, msize) cell of the topology as a sub-benchmark, reporting the
// simulated completion time in virtual milliseconds ("sim-ms") and the
// aggregate throughput in Mbps ("agg-Mbps") — the two panels of the figure.
func benchFigure(b *testing.B, preset string) {
	g, err := harness.Preset(preset)
	if err != nil {
		b.Fatal(err)
	}
	net := simnet.Config{Graph: g}
	algs := []harness.Algorithm{harness.LAM(), harness.MPICHAlg(), harness.Ours(alltoall.PairwiseSync)}
	m := g.NumMachines()
	for _, alg := range algs {
		fn, err := alg.Make(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, msize := range harness.PaperMsizes {
			b.Run(fmt.Sprintf("%s/%s", alg.Name, harness.FormatMsize(msize)), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					secs, err = harness.Measure(net, fn, msize)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(secs*1e3, "sim-ms")
				b.ReportMetric(float64(m)*float64(m-1)*float64(msize)*8/secs/1e6, "agg-Mbps")
			})
		}
	}
}

// BenchmarkFig6TopologyA regenerates Fig. 6: completion time and aggregate
// throughput on the 24-node single-switch cluster.
func BenchmarkFig6TopologyA(b *testing.B) { benchFigure(b, "a") }

// BenchmarkFig7TopologyB regenerates Fig. 7: the 32-node cluster with
// switches in a star.
func BenchmarkFig7TopologyB(b *testing.B) { benchFigure(b, "b") }

// BenchmarkFig8TopologyC regenerates Fig. 8: the 32-node cluster with
// switches in a chain.
func BenchmarkFig8TopologyC(b *testing.B) { benchFigure(b, "c") }

// BenchmarkAblationSync compares the synchronization schemes of Section 5 on
// the Fig. 1 cluster at 64 KB: the paper's pair-wise scheme, full barriers,
// and no synchronization at all.
func BenchmarkAblationSync(b *testing.B) {
	g := harness.Fig1()
	net := simnet.Config{Graph: g}
	const msize = 64 << 10
	for _, mode := range []alltoall.SyncMode{alltoall.PairwiseSync, alltoall.BarrierSync, alltoall.NoSync} {
		sc, err := harness.CompileRoutine(g, mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs, err = harness.Measure(net, sc.Fn(), msize)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}

// BenchmarkAblationScheduler compares the paper's load-optimal construction
// against the greedy first-fit scheduler on topology (c), where the phase
// count matters most.
func BenchmarkAblationScheduler(b *testing.B) {
	g := harness.TopologyC()
	net := simnet.Config{Graph: g}
	const msize = 64 << 10
	for _, alg := range []harness.Algorithm{harness.Ours(alltoall.PairwiseSync), harness.OursGreedy()} {
		fn, err := alg.Make(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg.Name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs, err = harness.Measure(net, fn, msize)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}

// BenchmarkSchedulerScaling measures schedule construction cost as the
// cluster grows (the generator must stay fast enough to run at job-launch
// time).
func BenchmarkSchedulerScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := topology.New()
		var sw [4]int
		for i := range sw {
			sw[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
			if i > 0 {
				g.MustConnect(sw[i-1], sw[i])
			}
		}
		for i := 0; i < n; i++ {
			m := g.MustAddMachine(fmt.Sprintf("n%d", i))
			g.MustConnect(sw[i%4], m)
		}
		g.MustValidate()
		b.Run(fmt.Sprintf("machines-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := schedule.Build(g)
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Phases) != g.AAPCLoad() {
					b.Fatal("suboptimal schedule")
				}
			}
		})
	}
}

// BenchmarkAlltoallMemTransport measures real data movement through the
// in-process transport for each algorithm (8 ranks, 4 KB blocks).
func BenchmarkAlltoallMemTransport(b *testing.B) {
	const (
		n     = 8
		msize = 4 << 10
	)
	star := topology.New()
	sw := star.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		m := star.MustAddMachine(fmt.Sprintf("n%d", i))
		star.MustConnect(sw, m)
	}
	star.MustValidate()
	ours, err := harness.CompileRoutine(star, alltoall.PairwiseSync)
	if err != nil {
		b.Fatal(err)
	}
	algs := map[string]alltoall.Func{
		"lam-simple":     alltoall.Simple,
		"mpich-offset":   alltoall.SimpleOffset,
		"mpich-pairwise": alltoall.Pairwise,
		"bruck":          alltoall.Bruck,
		"ours-scheduled": ours.Fn(),
	}
	for name, fn := range algs {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(n * (n - 1) * msize))
			for i := 0; i < b.N; i++ {
				err := mem.Run(n, func(c mpi.Comm) error {
					return fn(c, alltoall.NewContig(n, msize), msize)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionHeterogeneous measures the heterogeneous-bandwidth
// extension: topology (b) upgraded with 10x uplinks ("bg"), comparing the
// uniform-assuming generated routine, the capacity-aware weighted routine,
// and the baselines at 256 KB.
func BenchmarkExtensionHeterogeneous(b *testing.B) {
	g, err := harness.Preset("bg")
	if err != nil {
		b.Fatal(err)
	}
	net := simnet.Config{Graph: g}
	const msize = 256 << 10
	for _, alg := range []harness.Algorithm{
		harness.LAM(),
		harness.MPICHAlg(),
		harness.Ours(alltoall.PairwiseSync),
		harness.OursWeighted(),
	} {
		fn, err := alg.Make(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg.Name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs, err = harness.Measure(net, fn, msize)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}

// BenchmarkAblationWindow sweeps the send-window of the topology-oblivious
// windowed algorithm on topology (a) at 64 KB, bracketing it between the
// full fan-out of LAM (window = N-1) and full serialization (window = 1).
func BenchmarkAblationWindow(b *testing.B) {
	g := harness.TopologyA()
	net := simnet.Config{Graph: g}
	const msize = 64 << 10
	for _, window := range []int{1, 2, 4, 8, 23} {
		fn := alltoall.Windowed(window)
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			var secs float64
			var err error
			for i := 0; i < b.N; i++ {
				secs, err = harness.Measure(net, fn, msize)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}

// BenchmarkSimnetEngine measures raw simulator throughput: a 24-rank LAM
// all-to-all creates ~552 concurrent flows and drives the max-min solver
// hard. ns/op is the wall cost of simulating one full exchange.
func BenchmarkSimnetEngine(b *testing.B) {
	g := harness.TopologyA()
	net := simnet.Config{Graph: g}
	const msize = 64 << 10
	for i := 0; i < b.N; i++ {
		if _, err := harness.Measure(net, alltoall.Simple, msize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentationOverhead measures the cost of the obsv wrapper on
// the mem transport: the same scheduled all-to-all bare and instrumented
// (8 ranks, 4 KB blocks). The bare run is the shape of the pre-existing
// BenchmarkAlltoallMemTransport, so the pair doubles as a guard that the
// uninstrumented path does not regress. The absolute per-operation recording
// cost (~0.26 us: two clock reads plus one pooled, appended event) is
// measured in isolation by obsv.BenchmarkInstrumentedOpCost; on this
// microsecond-scale in-memory run it is a visible fraction, at real-network
// timescales it vanishes.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	const (
		n     = 8
		msize = 4 << 10
	)
	star := topology.New()
	sw := star.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		m := star.MustAddMachine(fmt.Sprintf("n%d", i))
		star.MustConnect(sw, m)
	}
	star.MustValidate()
	ours, err := harness.CompileRoutine(star, alltoall.PairwiseSync)
	if err != nil {
		b.Fatal(err)
	}
	fn := ours.Fn()
	b.Run("bare", func(b *testing.B) {
		b.SetBytes(int64(n * (n - 1) * msize))
		for i := 0; i < b.N; i++ {
			err := mem.Run(n, func(c mpi.Comm) error {
				return fn(c, alltoall.NewContig(n, msize), msize)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.SetBytes(int64(n * (n - 1) * msize))
		for i := 0; i < b.N; i++ {
			recs := make([]*obsv.Recorder, n)
			for r := range recs {
				recs[r] = obsv.NewRecorder(r)
			}
			err := mem.Run(n, func(c mpi.Comm) error {
				return fn(obsv.Instrument(c, recs[c.Rank()]), alltoall.NewContig(n, msize), msize)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
